// Package seekzip implements the random-access variant the paper's
// related work surveys ([6], "LZ77-like compression with fast random
// access"): the stream is cut into independently compressed blocks and
// an index maps uncompressed offsets to compressed ones, so reading an
// arbitrary range decompresses only the blocks it touches — the log-
// retrieval pattern of the paper's target application (seek into a
// multi-gigabyte trace without inflating all of it).
//
// Container layout (all integers little-endian):
//
//	magic "LZSX" | u32 blockSize | u64 totalLen
//	  blocks: each a standalone zlib stream
//	index: u32 count, count x u64 compressed offset (from file start)
//	u64 index offset | magic "XIDX"
package seekzip

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"lzssfpga/internal/deflate"
	"lzssfpga/internal/lzss"
)

var (
	magicHead = []byte("LZSX")
	magicTail = []byte("XIDX")
)

// ErrCorrupt reports a malformed archive: bad framing, an inconsistent
// index, or a block that fails to decode. Open and ReadAt never panic
// on hostile input — every structural violation surfaces as an error
// wrapping this sentinel.
var ErrCorrupt = errors.New("seekzip: corrupt archive")

// headerSize is magicHead + u32 blockSize + u64 totalLen; tailSize is
// u64 indexOff + magicTail.
const (
	headerSize = 4 + 4 + 8
	tailSize   = 8 + 4
)

// DefaultBlockSize balances seek granularity against ratio loss.
const DefaultBlockSize = 64 << 10

// Compress builds a seekable archive of data. blockSize 0 selects the
// default.
func Compress(data []byte, p lzss.Params, blockSize int) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	var out bytes.Buffer
	out.Write(magicHead)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(blockSize))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(data)))
	out.Write(hdr[:])

	nBlocks := (len(data) + blockSize - 1) / blockSize
	offsets := make([]uint64, 0, nBlocks)
	for i := 0; i < nBlocks; i++ {
		lo := i * blockSize
		hi := lo + blockSize
		if hi > len(data) {
			hi = len(data)
		}
		offsets = append(offsets, uint64(out.Len()))
		cmds, _, err := lzss.Compress(data[lo:hi], p)
		if err != nil {
			return nil, err
		}
		z, err := deflate.ZlibCompressBest(cmds, data[lo:hi], p.Window)
		if err != nil {
			return nil, err
		}
		out.Write(z)
	}
	indexOff := uint64(out.Len())
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(offsets)))
	out.Write(cnt[:])
	for _, o := range offsets {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], o)
		out.Write(b[:])
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], indexOff)
	out.Write(tail[:])
	out.Write(magicTail)
	return out.Bytes(), nil
}

// Archive provides random access into a seekable archive.
type Archive struct {
	raw       []byte
	blockSize int
	totalLen  int
	offsets   []uint64
	// cache of the most recently inflated block (log readers scan
	// locally, so one block of cache removes most repeated inflation).
	cachedBlock int
	cachedData  []byte
}

// Open parses the container and index. All arithmetic is overflow-safe
// and the layout must account for every byte exactly: a forged index
// offset, block count or total length — however large — is rejected,
// never used to slice out of range.
func Open(raw []byte) (*Archive, error) {
	if len(raw) < headerSize+4+tailSize || !bytes.Equal(raw[:4], magicHead) || !bytes.Equal(raw[len(raw)-4:], magicTail) {
		return nil, fmt.Errorf("%w: bad magic or impossible size", ErrCorrupt)
	}
	blockSize := int(binary.LittleEndian.Uint32(raw[4:]))
	if blockSize <= 0 {
		return nil, fmt.Errorf("%w: block size %d", ErrCorrupt, blockSize)
	}
	totalLen64 := binary.LittleEndian.Uint64(raw[8:])
	// An archive cannot describe more data than ~1032x its own size
	// (Deflate's expansion bound); anything bigger is forged, and this
	// also keeps every later int conversion and index computation exact.
	if totalLen64 > uint64(len(raw))*1032 {
		return nil, fmt.Errorf("%w: total length %d impossible for %d archive bytes", ErrCorrupt, totalLen64, len(raw))
	}
	totalLen := int(totalLen64)
	indexOff := binary.LittleEndian.Uint64(raw[len(raw)-tailSize:])
	// Compare without adding to indexOff: a near-MaxUint64 value must
	// not wrap past the bound.
	if indexOff < headerSize || indexOff > uint64(len(raw)-tailSize-4) {
		return nil, fmt.Errorf("%w: index offset %d out of range", ErrCorrupt, indexOff)
	}
	count := int(binary.LittleEndian.Uint32(raw[indexOff:]))
	want := (totalLen + blockSize - 1) / blockSize
	if count != want {
		return nil, fmt.Errorf("%w: index has %d blocks, data needs %d", ErrCorrupt, count, want)
	}
	// Exact layout equality: header, blocks, index and tail must tile
	// the file with no slack — truncation and padding both fail here.
	if uint64(count) > (uint64(len(raw))-indexOff-4-tailSize)/8 ||
		indexOff+4+uint64(count)*8+tailSize != uint64(len(raw)) {
		return nil, fmt.Errorf("%w: index size disagrees with archive size", ErrCorrupt)
	}
	pos := indexOff + 4
	offsets := make([]uint64, count)
	prev := uint64(headerSize)
	for i := range offsets {
		o := binary.LittleEndian.Uint64(raw[pos:])
		// Offsets start after the header, never run backwards, and stay
		// inside the block region.
		if o < prev || o > indexOff {
			return nil, fmt.Errorf("%w: block %d offset %d outside [%d,%d]", ErrCorrupt, i, o, prev, indexOff)
		}
		offsets[i] = o
		prev = o
		pos += 8
	}
	return &Archive{
		raw: raw, blockSize: blockSize, totalLen: totalLen,
		offsets: offsets, cachedBlock: -1,
	}, nil
}

// Len is the uncompressed size.
func (a *Archive) Len() int { return a.totalLen }

// Blocks is the number of independently decodable blocks.
func (a *Archive) Blocks() int { return len(a.offsets) }

// blockEnd returns the compressed end offset of block i.
func (a *Archive) blockEnd(i int) uint64 {
	if i+1 < len(a.offsets) {
		return a.offsets[i+1]
	}
	// Last block runs up to the index.
	return binary.LittleEndian.Uint64(a.raw[len(a.raw)-12:])
}

// block inflates (or returns the cached) block i, verifying the decoded
// length against the index's promise — a block that inflates to the
// wrong size would otherwise let ReadAt slice out of range.
func (a *Archive) block(i int) ([]byte, error) {
	if i == a.cachedBlock {
		return a.cachedData, nil
	}
	lo, hi := a.offsets[i], a.blockEnd(i)
	if lo > hi || hi > uint64(len(a.raw)) {
		return nil, fmt.Errorf("%w: block %d bounds [%d,%d) invalid", ErrCorrupt, i, lo, hi)
	}
	wantLen := a.blockSize
	if i == len(a.offsets)-1 {
		wantLen = a.totalLen - i*a.blockSize
	}
	data, err := deflate.ZlibDecompressLimited(a.raw[lo:hi], deflate.DecodeLimits{
		MaxOutputBytes: wantLen, MaxBlocks: 1 << 20,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: block %d: %w", ErrCorrupt, i, err)
	}
	if len(data) != wantLen {
		return nil, fmt.Errorf("%w: block %d inflated to %d bytes, index promises %d", ErrCorrupt, i, len(data), wantLen)
	}
	a.cachedBlock, a.cachedData = i, data
	return data, nil
}

// ReadAt fills p with the bytes at uncompressed offset off,
// decompressing only the touched blocks. Short reads at the end return
// the byte count with a nil error (callers check n).
func (a *Archive) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(a.totalLen) {
		return 0, fmt.Errorf("seekzip: offset %d out of [0,%d]", off, a.totalLen)
	}
	n := 0
	for n < len(p) && off < int64(a.totalLen) {
		bi := int(off) / a.blockSize
		blk, err := a.block(bi)
		if err != nil {
			return n, err
		}
		in := int(off) - bi*a.blockSize
		c := copy(p[n:], blk[in:])
		n += c
		off += int64(c)
	}
	return n, nil
}

// BlocksTouched reports how many blocks a [off, off+length) read
// inflates — the quantity random access is supposed to bound.
func (a *Archive) BlocksTouched(off int64, length int) int {
	if length <= 0 || off >= int64(a.totalLen) {
		return 0
	}
	first := int(off) / a.blockSize
	lastByte := int(off) + length - 1
	if lastByte >= a.totalLen {
		lastByte = a.totalLen - 1
	}
	return lastByte/a.blockSize - first + 1
}
