package seekzip

import (
	"bytes"
	"errors"
	"testing"

	"lzssfpga/internal/lzss"
)

func buildArchive(t *testing.T, n, blockSize int) ([]byte, []byte) {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i % 37)
	}
	z, err := Compress(data, lzss.HWSpeedParams(), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return data, z
}

// readAll drains an opened archive; any error return is fine, a panic
// or out-of-range slice is the failure mode under test.
func readAll(a *Archive) error {
	buf := make([]byte, a.Len())
	_, err := a.ReadAt(buf, 0)
	return err
}

func TestOpenEveryPrefixTruncation(t *testing.T) {
	_, z := buildArchive(t, 10_000, 2048)
	for cut := 0; cut < len(z); cut++ {
		a, err := Open(z[:cut])
		if err == nil {
			// A prefix that happens to parse (it cannot: the tail magic
			// is gone) would still have to fail reading.
			if rerr := readAll(a); rerr == nil {
				t.Fatalf("prefix %d/%d opened and read cleanly", cut, len(z))
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

func TestOpenEverySuffixTruncation(t *testing.T) {
	// Cutting from the front leaves a valid-looking tail whose index
	// offset points past the data that remains.
	_, z := buildArchive(t, 10_000, 2048)
	for cut := 1; cut < len(z) && cut < 600; cut++ {
		a, err := Open(z[cut:])
		if err == nil {
			if rerr := readAll(a); rerr == nil {
				t.Fatalf("suffix from %d opened and read cleanly", cut)
			}
		}
	}
}

func TestOpenBitFlips(t *testing.T) {
	data, z := buildArchive(t, 20_000, 4096)
	for pos := 0; pos < len(z); pos++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), z...)
			mut[pos] ^= bit
			a, err := Open(mut)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip at %d: Open error %v not typed", pos, err)
				}
				continue
			}
			// Opened despite the flip: reading must either error or —
			// only if the flip landed in dead space — reproduce the
			// data exactly. Silent wrong data is the one forbidden
			// outcome; each block's Adler-32 enforces that.
			buf := make([]byte, a.Len())
			if _, rerr := a.ReadAt(buf, 0); rerr == nil {
				if !bytes.Equal(buf, data) {
					t.Fatalf("flip at %d read back silently wrong data", pos)
				}
			}
		}
	}
}

func TestOpenForgedHeaderFields(t *testing.T) {
	_, z := buildArchive(t, 10_000, 2048)
	forge := func(mutate func([]byte)) error {
		mut := append([]byte(nil), z...)
		mutate(mut)
		_, err := Open(mut)
		return err
	}
	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"huge totalLen", func(b []byte) {
			for i := 8; i < 16; i++ {
				b[i] = 0xFF
			}
		}},
		{"huge indexOff", func(b []byte) {
			for i := len(b) - 12; i < len(b)-4; i++ {
				b[i] = 0xFF
			}
		}},
		{"indexOff into header", func(b []byte) {
			copy(b[len(b)-12:], []byte{3, 0, 0, 0, 0, 0, 0, 0})
		}},
		{"zero blockSize", func(b []byte) {
			copy(b[4:8], []byte{0, 0, 0, 0})
		}},
	}
	for _, tc := range cases {
		if err := forge(tc.mutate); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Open returned %v", tc.name, err)
		}
	}
}
