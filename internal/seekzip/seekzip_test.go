package seekzip

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/workload"
)

func testArchive(t *testing.T, data []byte, blockSize int) *Archive {
	t.Helper()
	raw, err := Compress(data, lzss.HWSpeedParams(), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFullReadEqualsOriginal(t *testing.T) {
	data := workload.Wiki(300_000, 100)
	a := testArchive(t, data, 32<<10)
	if a.Len() != len(data) {
		t.Fatalf("Len = %d", a.Len())
	}
	out := make([]byte, len(data))
	n, err := a.ReadAt(out, 0)
	if err != nil || n != len(data) {
		t.Fatalf("full read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("full read mismatch")
	}
}

func TestRandomReads(t *testing.T) {
	data := workload.CAN(500_000, 101)
	a := testArchive(t, data, 16<<10)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		off := rng.Intn(len(data))
		ln := 1 + rng.Intn(5000)
		buf := make([]byte, ln)
		n, err := a.ReadAt(buf, int64(off))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := len(data) - off
		if want > ln {
			want = ln
		}
		if n != want {
			t.Fatalf("trial %d: n=%d want %d", trial, n, want)
		}
		if !bytes.Equal(buf[:n], data[off:off+n]) {
			t.Fatalf("trial %d: content mismatch at %d+%d", trial, off, ln)
		}
	}
}

func TestBlocksTouchedBounded(t *testing.T) {
	data := workload.Wiki(400_000, 102)
	a := testArchive(t, data, 64<<10)
	// A read inside one block touches one block.
	if got := a.BlocksTouched(100, 1000); got != 1 {
		t.Fatalf("in-block read touches %d blocks", got)
	}
	// A read spanning a boundary touches two.
	if got := a.BlocksTouched(64<<10-10, 20); got != 2 {
		t.Fatalf("boundary read touches %d blocks", got)
	}
	// Reading everything touches all.
	if got := a.BlocksTouched(0, len(data)); got != a.Blocks() {
		t.Fatalf("full read touches %d of %d blocks", got, a.Blocks())
	}
	if a.BlocksTouched(0, 0) != 0 {
		t.Fatal("empty read touches blocks")
	}
}

func TestSeekSkipsDecompression(t *testing.T) {
	// Indirect check through the cache: reading the last bytes must not
	// have inflated the first block.
	data := workload.Wiki(1<<20, 103)
	a := testArchive(t, data, 64<<10)
	buf := make([]byte, 100)
	if _, err := a.ReadAt(buf, int64(len(data)-100)); err != nil {
		t.Fatal(err)
	}
	if a.cachedBlock != a.Blocks()-1 {
		t.Fatalf("cached block %d, want last (%d)", a.cachedBlock, a.Blocks()-1)
	}
}

func TestEdgeSizes(t *testing.T) {
	for _, n := range []int{0, 1, DefaultBlockSize - 1, DefaultBlockSize, DefaultBlockSize + 1} {
		data := workload.CAN(n, int64(n))
		a := testArchive(t, data, 0)
		out := make([]byte, n+10)
		got, err := a.ReadAt(out, 0)
		if err != nil || got != n {
			t.Fatalf("n=%d: read %d err %v", n, got, err)
		}
		if !bytes.Equal(out[:got], data) {
			t.Fatalf("n=%d: mismatch", n)
		}
	}
}

func TestRatioVsPlain(t *testing.T) {
	// Blocked compression loses some ratio to independent windows; the
	// loss must stay modest at 64 KiB blocks.
	data := workload.Wiki(1<<20, 104)
	raw, err := Compress(data, lzss.HWSpeedParams(), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(data)) / float64(len(raw))
	if ratio < 1.4 {
		t.Fatalf("seekable ratio %.2f too poor", ratio)
	}
}

func TestOpenRejectsCorrupt(t *testing.T) {
	data := workload.Wiki(100_000, 105)
	raw, err := Compress(data, lzss.HWSpeedParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bad magics and truncations.
	if _, err := Open(raw[:10]); err == nil {
		t.Fatal("truncated archive accepted")
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := Open(bad); err == nil {
		t.Fatal("bad head magic accepted")
	}
	bad2 := append([]byte(nil), raw...)
	bad2[len(bad2)-1] = 'Y'
	if _, err := Open(bad2); err == nil {
		t.Fatal("bad tail magic accepted")
	}
	// Corrupt block payload: detected at read time by the zlib adler.
	a := testArchive(t, data, 16<<10)
	a.raw = append([]byte(nil), a.raw...)
	a.raw[int(a.offsets[1])+8] ^= 0xFF
	buf := make([]byte, 100)
	if _, err := a.ReadAt(buf, 20<<10); err == nil {
		t.Fatal("corrupt block accepted")
	}
}

func TestReadAtOutOfRange(t *testing.T) {
	a := testArchive(t, []byte("small"), 0)
	if _, err := a.ReadAt(make([]byte, 4), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := a.ReadAt(make([]byte, 4), 100); err == nil {
		t.Fatal("offset past end accepted")
	}
	// Offset exactly at end: zero bytes, no error.
	n, err := a.ReadAt(make([]byte, 4), 5)
	if err != nil || n != 0 {
		t.Fatalf("read at end: n=%d err=%v", n, err)
	}
}

func TestQuickSeekReads(t *testing.T) {
	data := workload.Mixed(200_000, 106)
	a := testArchive(t, data, 8<<10)
	f := func(off uint32, ln uint16) bool {
		o := int64(off) % int64(len(data))
		l := int(ln)%4000 + 1
		buf := make([]byte, l)
		n, err := a.ReadAt(buf, o)
		if err != nil {
			return false
		}
		want := len(data) - int(o)
		if want > l {
			want = l
		}
		return n == want && bytes.Equal(buf[:n], data[o:int(o)+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
