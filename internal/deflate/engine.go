package deflate

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lzssfpga/internal/engine"
	"lzssfpga/internal/lzss"
	"lzssfpga/internal/obs"
)

// This file is the deflate side of the persistent compression engine:
// the shared default engine.Engine every ParallelCompress* call runs
// on, the pooled per-segment job type, and the streaming request driver
// that replaced the old spawn-goroutines-per-call pipeline. Setup that
// the old path paid per invocation — goroutine creation, channel
// allocation, barrier-style [][]byte assembly — is paid once per
// process here, and the request path recycles everything else (jobs,
// reorder state, segment bodies) through pools and the engine arena.

// SegmentAdaptive, passed as the segment argument of any
// ParallelCompress* entry point, lets the engine's online sizer choose
// the cut: segment size then tracks observed per-segment service time
// (see engine.Sizer). Adaptive cuts trade the fixed-segment determinism
// guarantee — two runs over the same data may segment differently —
// for steadier worker utilization; the default and any explicit
// segment size remain byte-deterministic.
const SegmentAdaptive = -1

// adaptiveSizer steps the adaptive cut between 64 KiB and 2 MiB, aiming
// for segments that keep a worker busy for single-digit milliseconds —
// long enough to amortize scheduling, short enough to stream through
// the reorder buffer without latency spikes.
var adaptiveSizer = engine.NewSizer(64<<10, 2<<20, 256<<10, 2*time.Millisecond, 12*time.Millisecond)

// defaultEng is the process-wide engine, built on first use. The floor
// of four shards keeps blocking-heavy work (fault-injected stalls, the
// resilient retry loop) overlapped even on a single-core box; CPU-bound
// segments just time-slice.
var (
	engMu      sync.Mutex
	defaultEng *engine.Engine
)

func defaultEngine() *engine.Engine {
	engMu.Lock()
	defer engMu.Unlock()
	if defaultEng == nil {
		shards := runtime.GOMAXPROCS(0)
		if shards < 4 {
			shards = 4
		}
		defaultEng = engine.New(engine.Config{Shards: shards})
	}
	return defaultEng
}

// ResetDefaultEngine closes the shared engine (draining queued jobs)
// and lets the next parallel call rebuild it sized to the then-current
// GOMAXPROCS. It exists for benchmarks that sweep GOMAXPROCS and for
// leak-checking tests; it must not race in-flight ParallelCompress*
// calls.
func ResetDefaultEngine() {
	engMu.Lock()
	e := defaultEng
	defaultEng = nil
	engMu.Unlock()
	if e != nil {
		e.Close()
	}
}

// ratioEWMA is the damped input/output ratio of recent parallel runs
// (float64 bits; zero = no run yet). It seeds the single up-front
// output allocation — the old path append-grew the assembly buffer,
// the new one sizes it from this estimate and almost never regrows.
var ratioEWMA atomic.Uint64

func estimatedRatio() float64 {
	if b := ratioEWMA.Load(); b != 0 {
		return math.Float64frombits(b)
	}
	return 2.0 // a conservative prior for compressible data
}

func observeRatio(r float64) {
	if r <= 0 {
		return
	}
	if old := ratioEWMA.Load(); old != 0 {
		r = math.Float64frombits(old) + (r-math.Float64frombits(old))/8
	}
	ratioEWMA.Store(math.Float64bits(r))
}

// estimateOut sizes the assembled-output allocation for n input bytes:
// the EWMA-predicted compressed size plus 20% headroom and the
// header/trailer framing. Underestimates merely fall back to append
// growth; overestimates waste only virtual address space.
func estimateOut(n int) int {
	return int(float64(n)/estimatedRatio()*1.2) + zlibHeaderLen + adlerLen + 64
}

const (
	zlibHeaderLen = 2
	adlerLen      = 4
)

// pjob is one segment job. The fast path and the resilient path share
// the type (opts == nil selects fast); jobs live in a pooled slice per
// request and hold no memory of their own.
type pjob struct {
	req    *engine.Request
	data   []byte
	p      lzss.Params
	idx    int
	lo, hi int
	dictLo int
	final  bool
	tr     *obs.Tracer
	// rt is the request-scoped trace carried in on the driver's context
	// (nil when the caller isn't tracing); Run credits this segment's
	// queue wait and execution time into it.
	rt *obs.RequestTrace
	// submitAt is stamped just before Submit when a registry is enabled
	// or the request is traced; Run turns it into the
	// deflate_queue_wait_us histogram and the trace's queue_wait stage.
	submitAt time.Time
	adaptive bool

	// Resilient mode (opts != nil): the attempt context, retry budget
	// and the run's shared fault ledger.
	ctx                        context.Context
	opts                       *ParallelOpts
	maxRetries                 int
	retries, panics, degradeds *atomic.Int64
}

var jobSlicePool = sync.Pool{New: func() any { return new([]pjob) }}

func getJobs(n int) *[]pjob {
	js := jobSlicePool.Get().(*[]pjob)
	if cap(*js) < n {
		*js = make([]pjob, n)
	}
	*js = (*js)[:n]
	return js
}

// putJobs zeroes the slice before pooling so cached jobs never pin a
// caller's input buffer.
func putJobs(js *[]pjob) {
	for i := range *js {
		(*js)[i] = pjob{}
	}
	jobSlicePool.Put(js)
}

// Run executes the segment on an engine worker. Complete is the last
// touch of the request and the job: the submitter may recycle both the
// moment it receives the completion.
func (j *pjob) Run(wid int) {
	k := deflateObs.Load()
	start := time.Now()
	if !j.submitAt.IsZero() {
		if k != nil {
			k.queueWaitUs.Observe(start.Sub(j.submitAt).Microseconds())
		}
		j.rt.AddQueueWait(start.Sub(j.submitAt))
	}
	var body *engine.Buf
	var err error
	if j.opts == nil {
		body, err = j.runFast(wid)
	} else {
		body = j.runResilient(wid)
	}
	if k != nil {
		k.segments.Inc()
		k.inBytes.Add(int64(j.hi - j.lo))
		if body != nil {
			k.outBytes.Add(int64(len(body.B)))
		}
		k.workerBusyNs.Add(time.Since(start).Nanoseconds())
	}
	// The compress stage of the request trace is the segment's whole
	// residence on the worker — including resilient retries and injected
	// stalls, which is exactly what a latency investigation needs to see.
	j.rt.AddCompress(time.Since(start))
	if j.adaptive && err == nil {
		adaptiveSizer.Observe(j.hi-j.lo, time.Since(start))
	}
	j.req.Complete(j.idx, body, err)
}

func (j *pjob) runFast(wid int) (*engine.Buf, error) {
	sw, err := getSegWorker(j.p)
	if err != nil {
		return nil, err
	}
	defer putSegWorker(sw)
	sw.tr = j.tr
	sw.tid = wid + 1
	sw.seg = j.idx
	sw.shard = wid
	return sw.compressSegment(j.data[j.dictLo:j.hi], j.lo-j.dictLo, j.final, segHint(j.hi-j.lo))
}

// runResilient mirrors the old resilient worker body: guarded attempt
// loop, then degradation to stored blocks when the budget is gone. It
// returns nil only when the run's context is already cancelled — the
// driver is about to fail the whole call anyway.
func (j *pjob) runResilient(wid int) *engine.Buf {
	var body *engine.Buf
	if sw, swErr := getSegWorker(j.p); swErr == nil {
		sw.tr = j.opts.Tracer
		sw.tid = wid + 1
		sw.shard = wid
		body = compressSegmentResilient(j.ctx, sw, j.data[j.dictLo:j.hi], j.lo-j.dictLo, j.idx, j.final,
			j.maxRetries, *j.opts, j.retries, j.panics)
		putSegWorker(sw)
	}
	if body == nil {
		if j.ctx.Err() != nil {
			return nil
		}
		// Retry budget gone (or no worker at all): stored blocks cannot
		// fail.
		body = storedSegment(j.data[j.lo:j.hi], j.final)
		j.degradeds.Add(1)
		if k := deflateObs.Load(); k != nil {
			k.segmentsDegraded.Inc()
		}
	}
	return body
}

// segHint predicts a segment's compressed size for the arena.
func segHint(segLen int) int {
	return int(float64(segLen)/estimatedRatio()*1.25) + 64
}

// segPlan is the shared segmentation arithmetic of both drivers.
type segPlan struct {
	segment, nSeg int
	adaptive      bool
}

func planSegments(dataLen, segment int) segPlan {
	adaptive := segment == SegmentAdaptive
	if adaptive {
		segment = adaptiveSizer.Value()
	}
	if segment <= 0 {
		segment = 256 << 10
	}
	nSeg := (dataLen + segment - 1) / segment
	if nSeg == 0 {
		nSeg = 1
	}
	return segPlan{segment: segment, nSeg: nSeg, adaptive: adaptive}
}

// dictLow is where segment i's matcher history starts: the segment
// start, or up to Window-1 bytes earlier under dictionary carry-over.
func dictLow(lo int, carry bool, p lzss.Params) int {
	if !carry {
		return lo
	}
	if reach := p.Window - 1; lo > reach {
		return lo - reach
	}
	return 0
}
