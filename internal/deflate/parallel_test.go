package deflate

import (
	"bytes"
	"compress/zlib"
	"io"
	"testing"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/workload"
)

func TestParallelCompressRoundTrip(t *testing.T) {
	data := workload.Wiki(2<<20, 70)
	p := lzss.HWSpeedParams()
	z, err := ParallelCompress(data, p, 256<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Our decoder.
	out, err := ZlibDecompress(z)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("own decoder: %v", err)
	}
	// Stdlib.
	zr, err := zlib.NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	sout, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(sout, data) {
		t.Fatalf("stdlib: %v", err)
	}
}

func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	data := workload.CAN(1<<20, 71)
	p := lzss.HWSpeedParams()
	ref, err := ParallelCompress(data, p, 128<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 16} {
		got, err := ParallelCompress(data, p, 128<<10, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: output differs from single-worker", workers)
		}
	}
}

func TestParallelEdgeSizes(t *testing.T) {
	p := lzss.HWSpeedParams()
	for _, n := range []int{0, 1, 100, 256 << 10, 256<<10 + 1, 300_001} {
		data := workload.Wiki(n, int64(n))
		z, err := ParallelCompress(data, p, 256<<10, 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out, err := ZlibDecompress(z)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("n=%d: round trip failed: %v", n, err)
		}
	}
}

func TestParallelRatioCloseToSerial(t *testing.T) {
	// Independent segments lose cross-boundary matches; the damage must
	// stay small at 256 KiB segments.
	data := workload.Wiki(2<<20, 72)
	p := lzss.HWSpeedParams()
	par, err := ParallelCompress(data, p, 256<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	cmds, _, err := lzss.Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ZlibCompress(cmds, data, p.Window)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(par)) > 1.05*float64(len(serial)) {
		t.Fatalf("parallel %d more than 5%% worse than serial %d", len(par), len(serial))
	}
}

func TestParallelDictRoundTrip(t *testing.T) {
	p := lzss.HWSpeedParams()
	for _, n := range []int{0, 1, 100, 256 << 10, 256<<10 + 1, 2 << 20} {
		data := workload.Wiki(n, int64(n)+3)
		z, err := ParallelCompressDict(data, p, 256<<10, 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Our inflater.
		out, err := ZlibDecompress(z)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("n=%d: own decoder: %v", n, err)
		}
		// Stdlib: carried-over dictionaries must stay inside the standard
		// 32 KiB inflate window, or any third-party decoder breaks.
		zr, err := zlib.NewReader(bytes.NewReader(z))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sout, err := io.ReadAll(zr)
		if err != nil || !bytes.Equal(sout, data) {
			t.Fatalf("n=%d: stdlib: %v", n, err)
		}
	}
}

func TestParallelDictDeterministicAcrossWorkers(t *testing.T) {
	data := workload.CAN(1<<20, 75)
	p := lzss.HWSpeedParams()
	ref, err := ParallelCompressDict(data, p, 128<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 16} {
		got, err := ParallelCompressDict(data, p, 128<<10, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: output differs from single-worker", workers)
		}
	}
}

func TestParallelDictImprovesRatio(t *testing.T) {
	// Carry-over exists to win back the matches segmenting loses; on a
	// self-similar corpus it must never produce a larger stream than the
	// independent-segment mode.
	data := workload.Wiki(2<<20, 76)
	p := lzss.HWSpeedParams()
	plain, err := ParallelCompress(data, p, 128<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	dict, err := ParallelCompressDict(data, p, 128<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dict) > len(plain) {
		t.Fatalf("dict mode %d bytes > plain %d", len(dict), len(plain))
	}
}

func TestParallelRejectsBadParams(t *testing.T) {
	if _, err := ParallelCompress([]byte("x"), lzss.Params{Window: 3}, 0, 0); err == nil {
		t.Fatal("bad params accepted")
	}
}

func BenchmarkParallelCompress(b *testing.B) {
	data := workload.Wiki(4<<20, 73)
	p := lzss.HWSpeedParams()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelCompress(data, p, 256<<10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelCompressDict measures the dictionary carry-over mode
// (pigz-style window presetting across segment cuts).
func BenchmarkParallelCompressDict(b *testing.B) {
	data := workload.Wiki(4<<20, 73)
	p := lzss.HWSpeedParams()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelCompressDict(data, p, 256<<10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelAdaptiveSegmentRoundTrip(t *testing.T) {
	// SegmentAdaptive gives up byte-determinism (the sizer may cut
	// differently run to run) but never correctness: every run must
	// still decode byte-exact, with both the plain and carry paths.
	data := workload.Wiki(3<<20, 72)
	p := lzss.HWSpeedParams()
	for _, carry := range []bool{false, true} {
		for run := 0; run < 3; run++ {
			var z []byte
			var err error
			if carry {
				z, err = ParallelCompressDict(data, p, SegmentAdaptive, 0)
			} else {
				z, err = ParallelCompress(data, p, SegmentAdaptive, 0)
			}
			if err != nil {
				t.Fatalf("carry=%v run=%d: %v", carry, run, err)
			}
			out, err := ZlibDecompress(z)
			if err != nil || !bytes.Equal(out, data) {
				t.Fatalf("carry=%v run=%d: round trip: %v", carry, run, err)
			}
		}
	}
	if got := adaptiveSizer.Value(); got < 64<<10 || got > 2<<20 {
		t.Fatalf("adaptive sizer left its bounds: %d", got)
	}
}
