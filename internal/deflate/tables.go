// Package deflate implements the subset of RFC 1951/1950 the paper's
// hardware emits — fixed-table Huffman blocks inside a ZLib container —
// plus a full, independent inflater (stored, fixed and dynamic blocks)
// used to verify streams without trusting the encoder, and a dynamic-
// Huffman encoder as the compression-ratio extension the paper mentions.
package deflate

import (
	"lzssfpga/internal/bitio"
)

// Symbol-space constants from RFC 1951.
const (
	endOfBlock   = 256
	maxLitLen    = 285 // highest length/literal symbol actually used
	numLitLenSym = 288 // fixed tree defines 288 (286/287 unused)
	numDistSym   = 30
	maxCodeLen   = 15
)

// lengthCode describes how a copy length maps onto a Deflate symbol.
type lengthCode struct {
	sym   uint16 // literal/length symbol (257..285)
	extra uint8  // number of extra bits
	base  uint16 // smallest length encoded by sym
}

// distCode describes how a copy distance maps onto a distance symbol.
type distCode struct {
	sym   uint8
	extra uint8
	base  uint16
}

var (
	// lengthBase[i] is the smallest length of symbol 257+i;
	// lengthExtra[i] its extra-bit count (RFC 1951 §3.2.5).
	lengthBase = [29]uint16{
		3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
		35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
	}
	lengthExtra = [29]uint8{
		0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
		3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
	}
	distBase = [30]uint16{
		1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
		257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
	}
	distExtra = [30]uint8{
		0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
		7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
	}

	// lengthToCode[len-3] precomputes the symbol for every length 3..258.
	lengthToCode [256]lengthCode
	// distToCode4 maps distances 1..256 directly; larger distances go
	// through distToCodeHi on (d-1)>>7.
	distToCodeLo [256]distCode
	distToCodeHi [256]distCode
)

func init() {
	for i := len(lengthBase) - 1; i >= 0; i-- {
		base := int(lengthBase[i])
		top := 258
		if i+1 < len(lengthBase) {
			top = int(lengthBase[i+1]) - 1
		}
		if i == len(lengthBase)-1 { // symbol 285 encodes only 258
			top = 258
		}
		for l := base; l <= top && l <= 258; l++ {
			lengthToCode[l-3] = lengthCode{sym: uint16(257 + i), extra: lengthExtra[i], base: lengthBase[i]}
		}
	}
	// Length 258 must use symbol 285 (zero extra bits), not 284.
	lengthToCode[258-3] = lengthCode{sym: 285, extra: 0, base: 258}

	codeFor := func(d int) distCode {
		for i := len(distBase) - 1; i >= 0; i-- {
			if d >= int(distBase[i]) {
				return distCode{sym: uint8(i), extra: distExtra[i], base: distBase[i]}
			}
		}
		return distCode{}
	}
	for d := 1; d <= 256; d++ {
		distToCodeLo[d-1] = codeFor(d)
	}
	for i := 0; i < 256; i++ {
		d := i<<7 + 1
		if d > 32768 {
			d = 32768
		}
		distToCodeHi[i] = codeFor(d)
	}
}

// lenCodeFor returns the symbol descriptor for a copy length in [3,258].
func lenCodeFor(length int) lengthCode { return lengthToCode[length-3] }

// distCodeFor returns the symbol descriptor for a distance in [1,32768].
func distCodeFor(d int) distCode {
	if d <= 256 {
		return distToCodeLo[d-1]
	}
	return distToCodeHi[(d-1)>>7]
}

// Fixed-table singletons: the RFC 1951 §3.2.6 tables are immutable, so
// every encoder shares one copy instead of rebuilding them per block
// (CommandBits used to rebuild the length table per command). The *Rev
// variants hold codes already bit-reversed into Deflate storage order,
// writable with plain WriteBits.
var (
	fixedLitLens      = fixedLitLenLengths()
	fixedDistLens     = fixedDistLengths()
	fixedLitCodes     = canonicalCodes(fixedLitLens)
	fixedDistCodes    = canonicalCodes(fixedDistLens)
	fixedLitCodesRev  = reverseCodes(fixedLitCodes, fixedLitLens)
	fixedDistCodesRev = reverseCodes(fixedDistCodes, fixedDistLens)
)

// reverseCodes returns codes with each entry bit-reversed within its
// code length — the storage order Deflate writes Huffman codes in.
func reverseCodes(codes []uint16, lens []uint8) []uint16 {
	out := make([]uint16, len(codes))
	copy(out, codes)
	reverseCodesInPlace(out, lens)
	return out
}

// reverseCodesInPlace bit-reverses each code within its length, in the
// caller's slice — the allocation-free form the reusable dynamic plan
// uses.
func reverseCodesInPlace(codes []uint16, lens []uint8) {
	for i, c := range codes {
		codes[i] = uint16(bitio.Reverse(uint32(c), uint(lens[i])))
	}
}

// fixedLitLenLengths returns the fixed literal/length code lengths
// (RFC 1951 §3.2.6): 0-143→8, 144-255→9, 256-279→7, 280-287→8.
func fixedLitLenLengths() []uint8 {
	l := make([]uint8, numLitLenSym)
	for i := range l {
		switch {
		case i < 144:
			l[i] = 8
		case i < 256:
			l[i] = 9
		case i < 280:
			l[i] = 7
		default:
			l[i] = 8
		}
	}
	return l
}

// fixedDistLengths returns the fixed distance code lengths (all 5).
func fixedDistLengths() []uint8 {
	l := make([]uint8, 32)
	for i := range l {
		l[i] = 5
	}
	return l
}

// canonicalCodes assigns canonical Huffman codes to the given lengths
// (RFC 1951 §3.2.2). codes[i] is the code for symbol i, stored in its
// natural (MSB-first) form; write it with WriteBitsRev.
func canonicalCodes(lengths []uint8) []uint16 {
	return canonicalCodesInto(nil, lengths)
}

// canonicalCodesInto is canonicalCodes writing into dst's backing array
// when it is large enough.
func canonicalCodesInto(dst []uint16, lengths []uint8) []uint16 {
	var blCount [maxCodeLen + 1]int
	for _, l := range lengths {
		blCount[l]++
	}
	blCount[0] = 0
	var nextCode [maxCodeLen + 1]uint16
	code := uint16(0)
	for b := 1; b <= maxCodeLen; b++ {
		code = (code + uint16(blCount[b-1])) << 1
		nextCode[b] = code
	}
	if cap(dst) < len(lengths) {
		dst = make([]uint16, len(lengths))
	}
	dst = dst[:len(lengths)]
	for i, l := range lengths {
		if l != 0 {
			dst[i] = nextCode[l]
			nextCode[l]++
		} else {
			dst[i] = 0
		}
	}
	return dst
}
