package deflate

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"lzssfpga/internal/engine"
	"lzssfpga/internal/lzss"
	"lzssfpga/internal/obs"
)

// ParallelOpts configures ParallelCompressResilient. The zero value is
// usable: default segment size and worker count, two retries per
// segment, no per-attempt deadline, no hook.
type ParallelOpts struct {
	// Segment is the cut size in bytes (0 selects 256 KiB,
	// SegmentAdaptive lets the engine's sizer choose); Workers caps the
	// call's in-flight segments on the shared engine (0 means the
	// engine's full width).
	Segment int
	Workers int
	// Carry enables dictionary carry-over across segment cuts
	// (ParallelCompressDict's mode). Carried segments reference history
	// outside themselves, so their per-segment self-check is skipped —
	// end-to-end verification still covers them.
	Carry bool
	// Tracer observes pipeline spans as in ParallelCompressTraced; may
	// be nil.
	Tracer *obs.Tracer
	// MaxSegmentRetries is how many times a failed segment attempt is
	// retried before the segment degrades to stored blocks (0 selects 2).
	MaxSegmentRetries int
	// SegmentTimeout bounds each attempt; an attempt that outlives it is
	// treated as a stalled worker and retried (0 = no per-attempt bound).
	SegmentTimeout time.Duration
	// SegmentHook runs at the start of every attempt with the attempt's
	// context, the segment index and the attempt number. It is the fault
	// seam: internal/faultinject provides hooks that panic or stall. A
	// panic in the hook (or anywhere in the attempt) is recovered and
	// counted; a returned error fails the attempt.
	SegmentHook func(ctx context.Context, seg, attempt int) error
}

// ResilienceReport summarizes what recovery machinery had to do during
// one ParallelCompressResilient run.
type ResilienceReport struct {
	// Segments is the segment count; Retries how many attempts beyond
	// each segment's first were needed; PanicsRecovered how many
	// attempts ended in a recovered panic; Degraded how many segments
	// fell back to stored blocks after exhausting their retry budget.
	Segments        int
	Retries         int
	PanicsRecovered int
	Degraded        int
}

// ParallelCompressResilient is ParallelCompress hardened for a hostile
// runtime: every segment attempt runs under recover() (a panicking
// worker is scrubbed and the segment retried), each attempt can carry a
// deadline, each compressed segment body is self-checked by independent
// re-inflation before being accepted, and a segment that exhausts its
// retry budget degrades to raw stored blocks — worse ratio, guaranteed
// correct — rather than failing the stream. The output is always one
// standard zlib stream. Only context cancellation (or invalid
// parameters) makes it return an error.
//
// The fast path (ParallelCompress and friends) is untouched: no
// recover, no context, no self-check on that route.
func ParallelCompressResilient(ctx context.Context, data []byte, p lzss.Params, o ParallelOpts) ([]byte, ResilienceReport, error) {
	var rep ResilienceReport
	if err := p.Validate(); err != nil {
		return nil, rep, err
	}
	if err := ctx.Err(); err != nil {
		return nil, rep, err
	}
	maxRetries := o.MaxSegmentRetries
	if maxRetries <= 0 {
		maxRetries = 2
	}
	plan := planSegments(len(data), o.Segment)
	rep.Segments = plan.nSeg
	rt := obs.RequestFromContext(ctx)

	splitStart := time.Now()
	hdr, err := ZlibHeader(p.Window)
	if err != nil {
		return nil, rep, err
	}
	out := make([]byte, 0, estimateOut(len(data)))
	out = append(out, hdr[:]...)
	var retries, panics, degraded atomic.Int64

	eng := defaultEngine()
	jobs := getJobs(plan.nSeg)
	defer putJobs(jobs)
	cancelled := false
	emit := func(b *engine.Buf, _ error) {
		if b == nil {
			// A job observed the cancelled context and gave up; the
			// driver below turns this into the run's error.
			cancelled = true
			return
		}
		if !cancelled {
			out = append(out, b.B...)
		}
		engine.PutBuf(b)
	}
	if o.Tracer != nil {
		o.Tracer.Span("split", 0, splitStart, time.Since(splitStart),
			fmt.Sprintf(`{"segments":%d,"workers":%d,"resilient":true}`, plan.nSeg, eng.Shards()))
	}
	submitErr := eng.SubmitAndStream(ctx, plan.nSeg, o.Workers,
		func(i int, r *engine.Request) engine.Job {
			j := &(*jobs)[i]
			lo := i * plan.segment
			hi := lo + plan.segment
			if hi > len(data) {
				hi = len(data)
			}
			*j = pjob{
				req: r, data: data, p: p, idx: i,
				lo: lo, hi: hi, dictLo: dictLow(lo, o.Carry, p),
				final: i == plan.nSeg-1, tr: o.Tracer, rt: rt, adaptive: plan.adaptive,
				ctx: ctx, opts: &o, maxRetries: maxRetries,
				retries: &retries, panics: &panics, degradeds: &degraded,
			}
			if k := deflateObs.Load(); k != nil || rt != nil {
				j.submitAt = time.Now()
			}
			return j
		}, emit)
	rep.Retries = int(retries.Load())
	rep.PanicsRecovered = int(panics.Load())
	rep.Degraded = int(degraded.Load())
	if cancelled || submitErr != nil || ctx.Err() != nil {
		cause := ctx.Err()
		if cause == nil {
			cause = submitErr
		}
		return nil, rep, fmt.Errorf("deflate: resilient compress cancelled: %w", cause)
	}

	assembleStart := time.Now()
	sum := AdlerChecksum(data)
	out = append(out, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	if o.Tracer != nil {
		o.Tracer.Span("assemble", 0, assembleStart, time.Since(assembleStart), fmt.Sprintf(`{"bytes":%d}`, len(out)))
	}
	if k := deflateObs.Load(); k != nil {
		k.parallelRuns.Inc()
		k.lastRatio.Set(float64(len(data)) / float64(len(out)))
	}
	observeRatio(float64(len(data)) / float64(len(out)))
	return out, rep, nil
}

// compressSegmentResilient drives the attempt loop for one segment.
// It returns nil when the retry budget is exhausted (the caller
// degrades to stored blocks); ctx cancellation also returns nil — the
// driver notices ctx and fails the whole run.
func compressSegmentResilient(ctx context.Context, sw *segWorker, buf []byte, origin, seg int, final bool,
	maxRetries int, o ParallelOpts, retries, panics *atomic.Int64) *engine.Buf {
	if sw == nil {
		return nil
	}
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		if attempt > 0 {
			retries.Add(1)
		}
		attemptCtx := ctx
		cancel := context.CancelFunc(func() {})
		if o.SegmentTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, o.SegmentTimeout)
		}
		sw.seg = seg
		body, err := attemptSegment(attemptCtx, sw, buf, origin, seg, attempt, final, o.SegmentHook, panics)
		cancel()
		if err != nil {
			continue
		}
		// Self-check: the body plus a final empty stored block is an
		// independently decodable Deflate stream — re-inflate and compare.
		// Segments with carried history reference bytes outside
		// themselves and cannot be checked in isolation.
		if origin == 0 {
			if err := verifySegment(body.B, buf, final); err != nil {
				engine.PutBuf(body)
				continue
			}
		}
		return body
	}
	return nil
}

// attemptSegment runs one guarded attempt: hook, then the normal
// segment compressor, with any panic recovered, counted, and the
// worker's matcher state scrubbed before reuse. A panic abandons the
// attempt's arena buffer to the garbage collector — the worker's
// buffer reference may itself be mid-update and cannot be trusted.
func attemptSegment(ctx context.Context, sw *segWorker, buf []byte, origin, seg, attempt int, final bool,
	hook func(context.Context, int, int) error, panics *atomic.Int64) (body *engine.Buf, err error) {
	defer func() {
		if r := recover(); r != nil {
			panics.Add(1)
			if k := deflateObs.Load(); k != nil {
				k.workerPanics.Inc()
			}
			// The panic may have left the matcher mid-update; Reset
			// rebuilds its hash state from scratch.
			sw.m.Reset(nil)
			sw.out.b = nil
			body, err = nil, fmt.Errorf("%w: recovered worker panic: %v", ErrCorrupt, r)
		}
	}()
	if hook != nil {
		if err := hook(ctx, seg, attempt); err != nil {
			return nil, err
		}
	}
	return sw.compressSegment(buf, origin, final, segHint(len(buf)-origin))
}

// verifySegment re-inflates a segment body independently and requires
// byte-exact agreement with the source. Non-final bodies end with a
// non-final empty stored block; appending a final empty stored block
// makes them complete streams.
var finalEmptyStored = []byte{0x01, 0x00, 0x00, 0xFF, 0xFF}

func verifySegment(body, want []byte, final bool) error {
	stream := body
	if !final {
		stream = make([]byte, 0, len(body)+len(finalEmptyStored))
		stream = append(stream, body...)
		stream = append(stream, finalEmptyStored...)
	}
	got, err := InflateLimited(stream, DecodeLimits{MaxOutputBytes: len(want), MaxBlocks: 1 << 20})
	if err != nil {
		return fmt.Errorf("deflate: segment self-check: %w", err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("%w: segment self-check mismatch", ErrCorrupt)
	}
	return nil
}

// storedSegment encodes chunk as raw stored blocks with the same
// framing contract as compressSegment: byte-aligned body in an arena
// buffer, trailing empty stored block carrying the final flag. It
// cannot fail — it is the degradation target when compression itself
// is what's faulty.
func storedSegment(chunk []byte, final bool) *engine.Buf {
	const maxStored = 65535
	nBlocks := (len(chunk) + maxStored - 1) / maxStored
	b := engine.GetBuf(len(chunk) + 5*(nBlocks+1))
	out := b.B
	for len(chunk) > 0 {
		n := len(chunk)
		if n > maxStored {
			n = maxStored
		}
		out = append(out, 0x00, byte(n), byte(n>>8), byte(^n), byte(^n>>8))
		out = append(out, chunk[:n]...)
		chunk = chunk[n:]
	}
	b0 := byte(0x00)
	if final {
		b0 = 0x01
	}
	out = append(out, b0, 0x00, 0x00, 0xFF, 0xFF)
	b.B = out
	return b
}
