package deflate

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/workload"
)

// dictParamSets is every preset the daemon can serve with, including
// the generation-two hot path (SWFastParams: Hash4 heads + match-skip)
// that postdates the original dict equivalence tests.
func dictParamSets(window int) map[string]lzss.Params {
	return map[string]lzss.Params{
		"level-min":     lzss.LevelParams(lzss.LevelMin, window, 15),
		"level-default": lzss.LevelParams(lzss.LevelDefault, window, 15),
		"level-max":     lzss.LevelParams(lzss.LevelMax, window, 15),
		"hw-speed":      withWindow(lzss.HWSpeedParams(), window),
		"sw-fast":       withWindow(lzss.SWFastParams(), window),
	}
}

func withWindow(p lzss.Params, window int) lzss.Params {
	p.Window = window
	return p
}

// Serial preset-dictionary compression must round-trip byte-exact
// through both our inflater and the stdlib across every level,
// including the gen-two greedy hot path.
func TestZlibCompressDictAllLevels(t *testing.T) {
	dict := workload.JSONish(8<<10, 11)
	data := workload.JSONish(20<<10, 99)
	for name, p := range dictParamSets(32768) {
		t.Run(name, func(t *testing.T) {
			z, err := ZlibCompressDict(data, dict, p)
			if err != nil {
				t.Fatal(err)
			}
			out, err := ZlibDecompressDict(z, dict)
			if err != nil || !bytes.Equal(out, data) {
				t.Fatalf("own decode: %v", err)
			}
			zr, err := zlibNewReaderDict(bytes.NewReader(z), dict)
			if err != nil {
				t.Fatalf("stdlib rejected stream: %v", err)
			}
			std, err := io.ReadAll(zr)
			if err != nil || !bytes.Equal(std, data) {
				t.Fatalf("stdlib decode: %v", err)
			}
		})
	}
}

// ParallelCompressDict (carry-over mode, no FDICT container) under the
// gen-two hot path: multi-segment cuts whose matchers are preset with
// the previous segment's window must still produce a stream any
// inflater decodes byte-exact.
func TestParallelCompressDictGenTwo(t *testing.T) {
	defer ResetDefaultEngine()
	corpora := map[string][]byte{
		"wiki": workload.Wiki(300<<10, 3),
		"json": workload.JSONish(300<<10, 4),
	}
	for name, p := range dictParamSets(4096) {
		for cname, data := range corpora {
			for _, segment := range []int{8 << 10, 64 << 10} {
				t.Run(fmt.Sprintf("%s/%s/seg%dk", name, cname, segment>>10), func(t *testing.T) {
					z, err := ParallelCompressDict(data, p, segment, 4)
					if err != nil {
						t.Fatal(err)
					}
					out, err := ZlibDecompress(z)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(out, data) {
						t.Fatal("round trip mismatch")
					}
				})
			}
		}
	}
}

// ParallelCompressPreset: the parallel FDICT path must round-trip
// byte-exact against ZlibDecompressDict and the stdlib across every
// level and multi-segment cut, with segment 0's matches reaching into
// the preset window.
func TestParallelCompressPresetRoundTrip(t *testing.T) {
	defer ResetDefaultEngine()
	dict := workload.JSONish(8<<10, 21)
	data := workload.JSONish(200<<10, 77)
	for name, p := range dictParamSets(32768) {
		for _, segment := range []int{16 << 10, 256 << 10} {
			t.Run(fmt.Sprintf("%s/seg%dk", name, segment>>10), func(t *testing.T) {
				z, err := ParallelCompressPreset(data, dict, p, segment, 4)
				if err != nil {
					t.Fatal(err)
				}
				out, err := ZlibDecompressDict(z, dict)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out, data) {
					t.Fatal("round trip mismatch")
				}
				zr, err := zlibNewReaderDict(bytes.NewReader(z), dict)
				if err != nil {
					t.Fatalf("stdlib rejected stream: %v", err)
				}
				std, err := io.ReadAll(zr)
				if err != nil || !bytes.Equal(std, data) {
					t.Fatalf("stdlib decode: %v", err)
				}
				// Wrong dictionary must be rejected by DICTID.
				if _, err := ZlibDecompressDict(z, []byte("wrong")); err == nil {
					t.Fatal("wrong dictionary accepted")
				}
			})
		}
	}
}

// A dictionary longer than the window must be capped to its trailing
// Window-1 bytes exactly like the serial path, keeping DICTID computed
// over the full dictionary (RFC 1950 requires the checksum of what the
// decompressor was handed, not of the slice the matcher used).
func TestParallelCompressPresetLongDict(t *testing.T) {
	defer ResetDefaultEngine()
	p := withWindow(lzss.SWFastParams(), 4096)
	dict := workload.JSONish(16<<10, 5) // 4x the window
	data := workload.JSONish(64<<10, 6)
	z, err := ParallelCompressPreset(data, dict, p, 8<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ZlibDecompressDict(z, dict)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("long-dict round trip: %v", err)
	}
	zr, err := zlibNewReaderDict(bytes.NewReader(z), dict)
	if err != nil {
		t.Fatal(err)
	}
	std, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(std, data) {
		t.Fatalf("stdlib long-dict decode: %v", err)
	}
}

// The preset window must actually be used: a short payload made of
// dictionary boilerplate compresses materially better with the
// dictionary than without, in the parallel path too.
func TestParallelPresetImprovesRatio(t *testing.T) {
	defer ResetDefaultEngine()
	p := withWindow(lzss.SWFastParams(), 32768)
	dict := workload.JSONish(16<<10, 40)
	data := workload.JSONish(4<<10, 40) // same seed: same schema and value pools
	plain, err := ParallelCompressDict(data, p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	preset, err := ParallelCompressPreset(data, dict, p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(preset) >= len(plain) {
		t.Fatalf("preset dictionary did not help: %d vs %d bytes", len(preset), len(plain))
	}
}
