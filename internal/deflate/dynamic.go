package deflate

import (
	"bytes"
	"fmt"

	"lzssfpga/internal/bitio"
	"lzssfpga/internal/token"
)

// Dynamic-Huffman block encoder (RFC 1951 §3.2.7). This is the
// compression-ratio extension the paper points at: per-block code
// tables tailored to the symbol statistics, at the price of a
// two-pass, stall-prone encoder that the hardware deliberately avoids.

// histogram tallies the literal/length and distance symbol frequencies
// of a command stream.
func histogram(cmds []token.Command) (lit [numLitLenSym]int64, dist [numDistSym]int64) {
	for _, c := range cmds {
		if c.K == token.Literal {
			lit[c.Lit]++
			continue
		}
		lit[lenCodeFor(c.Length).sym]++
		dist[distCodeFor(c.Distance).sym]++
	}
	lit[endOfBlock]++
	return lit, dist
}

// clSymbol is one step of the code-length-code run-length encoding.
type clSymbol struct {
	sym   int // 0..18
	extra uint32
	nbits uint
}

// rleCodeLengths compresses a code-length vector with symbols 16/17/18
// (copy previous 3-6, zeros 3-10, zeros 11-138).
func rleCodeLengths(lens []uint8) []clSymbol {
	return rleCodeLengthsInto(nil, lens)
}

// rleCodeLengthsInto is rleCodeLengths appending into out (pass a
// truncated scratch slice to reuse its backing array).
func rleCodeLengthsInto(out []clSymbol, lens []uint8) []clSymbol {
	for i := 0; i < len(lens); {
		l := lens[i]
		run := 1
		for i+run < len(lens) && lens[i+run] == l {
			run++
		}
		switch {
		case l == 0 && run >= 3:
			for run >= 3 {
				n := run
				if n > 138 {
					n = 138
				}
				if n <= 10 {
					out = append(out, clSymbol{sym: 17, extra: uint32(n - 3), nbits: 3})
				} else {
					out = append(out, clSymbol{sym: 18, extra: uint32(n - 11), nbits: 7})
				}
				run -= n
				i += n
			}
			for ; run > 0; run-- {
				out = append(out, clSymbol{sym: 0})
				i++
			}
		case l != 0 && run >= 4:
			out = append(out, clSymbol{sym: int(l)})
			i++
			run--
			for run >= 3 {
				n := run
				if n > 6 {
					n = 6
				}
				out = append(out, clSymbol{sym: 16, extra: uint32(n - 3), nbits: 2})
				run -= n
				i += n
			}
			for ; run > 0; run-- {
				out = append(out, clSymbol{sym: int(l)})
				i++
			}
		default:
			for ; run > 0; run-- {
				out = append(out, clSymbol{sym: int(l)})
				i++
			}
		}
	}
	return out
}

// dynamicPlan holds everything needed to emit one dynamic block. The
// slices (and the trailing scratch fields) are reused across plan()
// calls, so a long-lived plan — e.g. one held by a pooled parallel
// worker — plans block after block without allocating.
type dynamicPlan struct {
	litLens  []uint8
	distLens []uint8
	litCodes []uint16
	dstCodes []uint16
	clLens   []uint8
	clCodes  []uint16
	clSyms   []clSymbol
	nLit     int // HLIT + 257
	nDist    int // HDIST + 1
	nCl      int // HCLEN + 4

	// scratch, valid only during plan()
	all []uint8 // concatenated lit+dist lengths for the CL pass
	cb  codeBuilder
}

// planDynamic computes the code tables and header layout for cmds.
func planDynamic(cmds []token.Command) *dynamicPlan {
	p := &dynamicPlan{}
	p.plan(cmds)
	return p
}

// resizeU8 returns a zeroed slice of length n, reusing s's backing
// array when large enough (codeBuilder.build requires zeroed lengths).
func resizeU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// plan recomputes the code tables and header layout for cmds, reusing
// the plan's buffers.
func (p *dynamicPlan) plan(cmds []token.Command) {
	litFreq, distFreq := histogram(cmds)
	p.litLens = resizeU8(p.litLens, numLitLenSym)
	p.cb.build(litFreq[:], p.litLens, maxCodeLen)
	p.distLens = resizeU8(p.distLens, numDistSym)
	p.cb.build(distFreq[:], p.distLens, maxCodeLen)
	// The distance code may be empty (no matches): RFC 1951 allows one
	// zero-length entry, but a single 1-bit dummy is what zlib emits
	// and what every decoder accepts.
	if maxDepth(p.distLens) == 0 {
		p.distLens[0] = 1
	}
	// Trim trailing zeros down to the required minimums.
	p.nLit = numLitLenSym - 2 // symbols 286/287 never occur
	for p.nLit > 257 && p.litLens[p.nLit-1] == 0 {
		p.nLit--
	}
	p.nDist = numDistSym
	for p.nDist > 1 && p.distLens[p.nDist-1] == 0 {
		p.nDist--
	}
	// RLE the concatenated length vector and build the CL code over it.
	p.all = append(p.all[:0], p.litLens[:p.nLit]...)
	p.all = append(p.all, p.distLens[:p.nDist]...)
	p.clSyms = rleCodeLengthsInto(p.clSyms[:0], p.all)
	var clFreq [19]int64
	for _, s := range p.clSyms {
		clFreq[s.sym]++
	}
	p.clLens = resizeU8(p.clLens, 19)
	p.cb.build(clFreq[:], p.clLens, 7)
	// HCLEN: trim the permuted CL length list.
	p.nCl = 19
	for p.nCl > 4 && p.clLens[codeLengthOrder[p.nCl-1]] == 0 {
		p.nCl--
	}
	// Codes are stored pre-reversed into Deflate storage order; emit
	// writes them with plain WriteBits.
	p.litCodes = canonicalCodesInto(p.litCodes, p.litLens)
	reverseCodesInPlace(p.litCodes, p.litLens)
	p.dstCodes = canonicalCodesInto(p.dstCodes, p.distLens)
	reverseCodesInPlace(p.dstCodes, p.distLens)
	p.clCodes = canonicalCodesInto(p.clCodes, p.clLens)
	reverseCodesInPlace(p.clCodes, p.clLens)
}

// headerBits returns the encoded size of the dynamic header.
func (p *dynamicPlan) headerBits() int {
	n := 5 + 5 + 4 + 3*p.nCl
	for _, s := range p.clSyms {
		n += int(p.clLens[s.sym]) + int(s.nbits)
	}
	return n
}

// bodyBits returns the encoded size of the symbols (incl. end-of-block).
func (p *dynamicPlan) bodyBits(cmds []token.Command) int {
	n := int(p.litLens[endOfBlock])
	for _, c := range cmds {
		if c.K == token.Literal {
			n += int(p.litLens[c.Lit])
			continue
		}
		lc := lenCodeFor(c.Length)
		dc := distCodeFor(c.Distance)
		n += int(p.litLens[lc.sym]) + int(lc.extra) + int(p.distLens[dc.sym]) + int(dc.extra)
	}
	return n
}

// emit writes the complete dynamic block (header + symbols + EOB).
func (p *dynamicPlan) emit(bw *bitio.Writer, cmds []token.Command, final bool) error {
	bw.WriteBool(final)
	bw.WriteBits(0b10, 2)
	bw.WriteBits(uint32(p.nLit-257), 5)
	bw.WriteBits(uint32(p.nDist-1), 5)
	bw.WriteBits(uint32(p.nCl-4), 4)
	for i := 0; i < p.nCl; i++ {
		bw.WriteBits(uint32(p.clLens[codeLengthOrder[i]]), 3)
	}
	for _, s := range p.clSyms {
		bw.WriteBits(uint32(p.clCodes[s.sym]), uint(p.clLens[s.sym]))
		if s.nbits > 0 {
			bw.WriteBits(s.extra, s.nbits)
		}
	}
	for _, c := range cmds {
		switch c.K {
		case token.Literal:
			bw.WriteBits(uint32(p.litCodes[c.Lit]), uint(p.litLens[c.Lit]))
		case token.Match:
			if err := c.Validate(); err != nil {
				return err
			}
			lc := lenCodeFor(c.Length)
			bw.WriteBits(uint32(p.litCodes[lc.sym]), uint(p.litLens[lc.sym]))
			if lc.extra > 0 {
				bw.WriteBits(uint32(c.Length)-uint32(lc.base), uint(lc.extra))
			}
			dc := distCodeFor(c.Distance)
			bw.WriteBits(uint32(p.dstCodes[dc.sym]), uint(p.distLens[dc.sym]))
			if dc.extra > 0 {
				bw.WriteBits(uint32(c.Distance)-uint32(dc.base), uint(dc.extra))
			}
		default:
			return fmt.Errorf("deflate: unknown command kind %d", c.K)
		}
	}
	bw.WriteBits(uint32(p.litCodes[endOfBlock]), uint(p.litLens[endOfBlock]))
	return bw.Err()
}

// DynamicDeflate encodes cmds as one final dynamic-Huffman block.
func DynamicDeflate(cmds []token.Command) ([]byte, error) {
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	if err := planDynamic(cmds).emit(bw, cmds, true); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BestDeflate picks the cheapest representation of the block among
// stored, fixed-Huffman and dynamic-Huffman — zlib's per-block choice.
// src must be the bytes cmds expand to (needed for the stored option).
func BestDeflate(cmds []token.Command, src []byte) ([]byte, error) {
	p := planDynamic(cmds)
	dynBits := 3 + p.headerBits() + p.bodyBits(cmds)
	fixBits := 3 + 7 // header + EOB
	for _, c := range cmds {
		fixBits += CommandBits(c)
	}
	// Stored: 5 bytes of header per 65535-byte chunk, byte-aligned.
	storedBits := 8 * (len(src) + 5*(len(src)/65535+1))
	switch {
	case storedBits < dynBits && storedBits < fixBits:
		return StoredDeflate(src)
	case dynBits < fixBits:
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		if err := p.emit(bw, cmds, true); err != nil {
			return nil, err
		}
		if err := bw.Flush(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	default:
		return FixedDeflate(cmds)
	}
}

// ZlibCompressBest is ZlibCompress with per-block format selection.
func ZlibCompressBest(cmds []token.Command, src []byte, window int) ([]byte, error) {
	body, err := BestDeflate(cmds, src)
	if err != nil {
		return nil, err
	}
	return ZlibWrap(body, src, window)
}
