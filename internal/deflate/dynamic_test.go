package deflate

import (
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/token"
)

// --- length-limited Huffman construction ---

func kraftOK(lengths []uint8, maxLen int) bool {
	var k, full int64 = 0, 1 << uint(maxLen)
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxLen {
			return false
		}
		k += int64(1) << uint(maxLen-int(l))
	}
	return k <= full
}

func TestBuildCodeLengthsSimple(t *testing.T) {
	freqs := []int64{10, 10, 10, 10}
	lens := buildCodeLengths(freqs, 15)
	for i, l := range lens {
		if l != 2 {
			t.Fatalf("symbol %d: length %d, want 2 (balanced tree)", i, l)
		}
	}
}

func TestBuildCodeLengthsSkewed(t *testing.T) {
	freqs := []int64{1000, 10, 10, 1}
	lens := buildCodeLengths(freqs, 15)
	if lens[0] != 1 {
		t.Fatalf("dominant symbol should get a 1-bit code, got %d", lens[0])
	}
	if !kraftOK(lens, 15) {
		t.Fatal("Kraft violated")
	}
}

func TestBuildCodeLengthsSingleSymbol(t *testing.T) {
	freqs := make([]int64, 8)
	freqs[3] = 42
	lens := buildCodeLengths(freqs, 15)
	if lens[3] != 1 {
		t.Fatalf("single used symbol must get length 1, got %d", lens[3])
	}
	for i, l := range lens {
		if i != 3 && l != 0 {
			t.Fatal("unused symbol got a code")
		}
	}
}

func TestBuildCodeLengthsEmpty(t *testing.T) {
	lens := buildCodeLengths(make([]int64, 5), 15)
	for _, l := range lens {
		if l != 0 {
			t.Fatal("empty histogram must give no codes")
		}
	}
}

func TestBuildCodeLengthsLimitEnforced(t *testing.T) {
	// Fibonacci-like frequencies force a maximally skewed tree whose
	// natural depth exceeds any small limit.
	freqs := make([]int64, 30)
	a, b := int64(1), int64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	for _, limit := range []int{7, 9, 15} {
		lens := buildCodeLengths(append([]int64(nil), freqs...), limit)
		if got := maxDepth(lens); got > limit {
			t.Fatalf("limit %d: max depth %d", limit, got)
		}
		if !kraftOK(lens, limit) {
			t.Fatalf("limit %d: Kraft violated", limit)
		}
		// Every used symbol still has a code.
		for i, f := range freqs {
			if f > 0 && lens[i] == 0 {
				t.Fatalf("limit %d: symbol %d lost its code", limit, i)
			}
		}
	}
}

func TestBuildCodeLengthsDecodable(t *testing.T) {
	// Any constructed code must be accepted by the (independent)
	// canonical decoder — completeness and prefix-freedom in one check.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(285)
		freqs := make([]int64, n)
		used := 0
		for i := range freqs {
			if rng.Intn(3) > 0 {
				freqs[i] = int64(rng.Intn(10000)) + 1
				used++
			}
		}
		if used < 2 {
			freqs[0], freqs[1] = 5, 9
		}
		lens := buildCodeLengths(freqs, maxCodeLen)
		if _, err := newHuffDec(lens); err != nil {
			t.Fatalf("trial %d: constructed code rejected by decoder: %v", trial, err)
		}
	}
}

func TestQuickHuffmanKraft(t *testing.T) {
	f := func(raw []uint16, limitSel bool) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 286 {
			raw = raw[:286]
		}
		freqs := make([]int64, len(raw))
		used := 0
		for i, v := range raw {
			freqs[i] = int64(v)
			if v > 0 {
				used++
			}
		}
		if used == 0 {
			return true
		}
		limit := 15
		if limitSel {
			limit = 7
		}
		lens := buildCodeLengths(freqs, limit)
		return kraftOK(lens, limit) && maxDepth(lens) <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- RLE of code lengths ---

func TestRleCodeLengthsRoundTrip(t *testing.T) {
	// Decode the RLE stream back and compare.
	decode := func(syms []clSymbol) []uint8 {
		var out []uint8
		for _, s := range syms {
			switch {
			case s.sym < 16:
				out = append(out, uint8(s.sym))
			case s.sym == 16:
				prev := out[len(out)-1]
				for j := uint32(0); j < s.extra+3; j++ {
					out = append(out, prev)
				}
			case s.sym == 17:
				for j := uint32(0); j < s.extra+3; j++ {
					out = append(out, 0)
				}
			case s.sym == 18:
				for j := uint32(0); j < s.extra+11; j++ {
					out = append(out, 0)
				}
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(316)
		lens := make([]uint8, n)
		for i := 0; i < n; {
			run := 1 + rng.Intn(20)
			v := uint8(rng.Intn(16))
			if rng.Intn(2) == 0 {
				v = 0 // plenty of zero runs
			}
			for j := 0; j < run && i < n; j++ {
				lens[i] = v
				i++
			}
		}
		got := decode(rleCodeLengths(lens))
		if !bytes.Equal(got, lens) {
			t.Fatalf("trial %d: RLE round trip failed", trial)
		}
	}
}

func TestRleLongZeroRun(t *testing.T) {
	lens := make([]uint8, 300) // longer than one 18-symbol can hold
	syms := rleCodeLengths(lens)
	for _, s := range syms {
		if s.sym < 17 {
			t.Fatalf("zero run should use only 17/18 symbols, got %d", s.sym)
		}
	}
	total := 0
	for _, s := range syms {
		if s.sym == 17 {
			total += int(s.extra) + 3
		} else {
			total += int(s.extra) + 11
		}
	}
	if total != 300 {
		t.Fatalf("runs cover %d, want 300", total)
	}
}

// --- dynamic block encoding ---

func lzssCmds(t *testing.T, src []byte) []token.Command {
	t.Helper()
	cmds, _, err := lzss.Compress(src, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	return cmds
}

func TestDynamicDeflateStdlibInterop(t *testing.T) {
	srcs := [][]byte{
		[]byte("aaaaaaaaaaaaaaaaaaaaabbbbbbbbbcccc"),
		[]byte(strings.Repeat("dynamic block with skewed symbol stats ", 500)),
		{42},
		bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 4096),
	}
	for i, src := range srcs {
		body, err := DynamicDeflate(lzssCmds(t, src))
		if err != nil {
			t.Fatal(err)
		}
		r := flate.NewReader(bytes.NewReader(body))
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("case %d: stdlib rejected our dynamic block: %v", i, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: mismatch", i)
		}
		// Our own inflater too.
		own, err := Inflate(body)
		if err != nil || !bytes.Equal(own, src) {
			t.Fatalf("case %d: own inflater failed: %v", i, err)
		}
	}
}

func TestDynamicBeatsFixedOnSkewedData(t *testing.T) {
	// 9-bit literals (>=144) dominate: fixed tables price them at 9
	// bits, a dynamic table prices them near log2(alphabet).
	src := make([]byte, 50000)
	rng := rand.New(rand.NewSource(6))
	for i := range src {
		src[i] = 200 + byte(rng.Intn(8))
	}
	cmds := lzssCmds(t, src)
	fixed, err := FixedDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := DynamicDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) >= len(fixed) {
		t.Fatalf("dynamic %d not smaller than fixed %d on skewed data", len(dyn), len(fixed))
	}
}

func TestBestDeflatePicksStoredForRandom(t *testing.T) {
	src := make([]byte, 30000)
	rand.New(rand.NewSource(7)).Read(src)
	cmds := lzssCmds(t, src)
	best, err := BestDeflate(cmds, src)
	if err != nil {
		t.Fatal(err)
	}
	// Stored costs len+5*chunks; both Huffman forms cost more on random
	// bytes (literals average > 8 bits).
	if len(best) > len(src)+10 {
		t.Fatalf("best encoding %d bytes on %d random bytes — stored not chosen", len(best), len(src))
	}
	got, err := Inflate(best)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("stored round trip failed: %v", err)
	}
}

func TestBestDeflateNeverWorseThanComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		src := make([]byte, 5000)
		switch trial % 3 {
		case 0:
			rng.Read(src)
		case 1:
			for i := range src {
				src[i] = byte(rng.Intn(3)) * 85
			}
		case 2:
			for i := range src {
				src[i] = byte(i / 100)
			}
		}
		cmds := lzssCmds(t, src)
		fixed, _ := FixedDeflate(cmds)
		dyn, _ := DynamicDeflate(cmds)
		stored, _ := StoredDeflate(src)
		best, err := BestDeflate(cmds, src)
		if err != nil {
			t.Fatal(err)
		}
		min := len(fixed)
		for _, n := range []int{len(dyn), len(stored)} {
			if n < min {
				min = n
			}
		}
		// Allow a byte of padding slack.
		if len(best) > min+1 {
			t.Fatalf("trial %d: best %d > min(fixed %d, dyn %d, stored %d)",
				trial, len(best), len(fixed), len(dyn), len(stored))
		}
		got, err := Inflate(best)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("trial %d: best round trip failed: %v", trial, err)
		}
	}
}

func TestZlibCompressBestInterop(t *testing.T) {
	src := []byte(strings.Repeat("zlib best-block container check ", 300))
	cmds := lzssCmds(t, src)
	z, err := ZlibCompressBest(cmds, src, 4096)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ZlibDecompress(z)
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("round trip failed: %v", err)
	}
	zFixed, err := ZlibCompress(cmds, src, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) > len(zFixed) {
		t.Fatalf("best (%d) worse than fixed (%d)", len(z), len(zFixed))
	}
}

func TestQuickDynamicRoundTrip(t *testing.T) {
	p := lzss.Params{Window: 1024, HashBits: 10, MaxChain: 8, Nice: 32, InsertLimit: 8}
	f := func(data []byte, mod uint8) bool {
		if len(data) == 0 {
			return true
		}
		m := int(mod%9) + 2
		for i := range data {
			data[i] = byte(int(data[i]) % m)
		}
		cmds, _, err := lzss.Compress(data, p)
		if err != nil {
			return false
		}
		body, err := DynamicDeflate(cmds)
		if err != nil {
			return false
		}
		out, err := Inflate(body)
		if err != nil || !bytes.Equal(out, data) {
			return false
		}
		// Stdlib agreement.
		r := flate.NewReader(bytes.NewReader(body))
		sout, err := io.ReadAll(r)
		return err == nil && bytes.Equal(sout, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDynamicHeaderBitsMatchEmission(t *testing.T) {
	src := []byte(strings.Repeat("header accounting check ", 200))
	cmds := lzssCmds(t, src)
	p := planDynamic(cmds)
	var buf bytes.Buffer
	bw := newBitWriter(&buf)
	if err := p.emit(bw, cmds, true); err != nil {
		t.Fatal(err)
	}
	want := 3 + p.headerBits() + p.bodyBits(cmds)
	if got := int(bw.BitsWritten()); got != want {
		t.Fatalf("emitted %d bits, plan predicted %d", got, want)
	}
}

func BenchmarkDynamicDeflate(b *testing.B) {
	src := []byte(strings.Repeat("benchmark payload with repeats repeats ", 1600))[:65536]
	cmds, _, err := lzss.Compress(src, lzss.HWSpeedParams())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DynamicDeflate(cmds); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseCommandsRoundTrip(t *testing.T) {
	src := []byte(strings.Repeat("parse the command stream back out ", 400))
	cmds := lzssCmds(t, src)
	fixed, err := FixedDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCommands(fixed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := token.Expand(parsed)
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("fixed: %v", err)
	}
	dyn, err := DynamicDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err = ParseCommands(dyn)
	if err != nil {
		t.Fatal(err)
	}
	out, err = token.Expand(parsed)
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("dynamic: %v", err)
	}
	stored, err := StoredDeflate(src)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err = ParseCommands(stored)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range parsed {
		if c.K != token.Literal {
			t.Fatal("stored block must parse to literals")
		}
	}
	if _, err := ParseCommands([]byte{0x07}); err == nil {
		t.Fatal("reserved block type accepted")
	}
	if _, err := ParseCommands([]byte{0x01, 0x05, 0x00, 0x12, 0x00}); err == nil {
		t.Fatal("bad stored NLEN accepted")
	}
}
