package deflate

import (
	"bytes"
	"compress/flate"
	"compress/zlib"
	"hash/adler32"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/token"
)

// --- table construction ---

func TestLengthCodeBoundaries(t *testing.T) {
	cases := []struct {
		length int
		sym    uint16
		extra  uint8
		base   uint16
	}{
		{3, 257, 0, 3},
		{10, 264, 0, 10},
		{11, 265, 1, 11},
		{12, 265, 1, 11},
		{13, 266, 1, 13},
		{34, 272, 2, 31},
		{130, 280, 4, 115},
		{131, 281, 5, 131},
		{257, 284, 5, 227},
		{258, 285, 0, 258},
	}
	for _, c := range cases {
		lc := lenCodeFor(c.length)
		if lc.sym != c.sym || lc.extra != c.extra || lc.base != c.base {
			t.Errorf("lenCodeFor(%d) = {%d,%d,%d}, want {%d,%d,%d}",
				c.length, lc.sym, lc.extra, lc.base, c.sym, c.extra, c.base)
		}
	}
}

func TestLengthCodeCoversRange(t *testing.T) {
	for l := 3; l <= 258; l++ {
		lc := lenCodeFor(l)
		if lc.sym < 257 || lc.sym > 285 {
			t.Fatalf("length %d maps to symbol %d", l, lc.sym)
		}
		// The encoded (base, extra) pair must reproduce l.
		if int(lc.base) > l || l-int(lc.base) >= 1<<lc.extra {
			t.Fatalf("length %d not representable: base %d extra %d", l, lc.base, lc.extra)
		}
	}
}

func TestDistCodeBoundaries(t *testing.T) {
	cases := []struct {
		d     int
		sym   uint8
		extra uint8
		base  uint16
	}{
		{1, 0, 0, 1},
		{4, 3, 0, 4},
		{5, 4, 1, 5},
		{8, 5, 1, 7},
		{9, 6, 2, 9},
		{256, 15, 6, 193},
		{257, 16, 7, 257},
		{4096, 23, 10, 3073},
		{24577, 29, 13, 24577},
		{32768, 29, 13, 24577},
	}
	for _, c := range cases {
		dc := distCodeFor(c.d)
		if dc.sym != c.sym || dc.extra != c.extra || dc.base != c.base {
			t.Errorf("distCodeFor(%d) = {%d,%d,%d}, want {%d,%d,%d}",
				c.d, dc.sym, dc.extra, dc.base, c.sym, c.extra, c.base)
		}
	}
}

func TestDistCodeCoversRange(t *testing.T) {
	for d := 1; d <= 32768; d++ {
		dc := distCodeFor(d)
		if int(dc.base) > d || d-int(dc.base) >= 1<<dc.extra {
			t.Fatalf("distance %d not representable: sym %d base %d extra %d", d, dc.sym, dc.base, dc.extra)
		}
	}
}

func TestFixedCodesMatchRFC(t *testing.T) {
	codes := canonicalCodes(fixedLitLenLengths())
	// RFC 1951 §3.2.6 anchor values.
	if codes[0] != 0x30 { // literal 0 → 00110000
		t.Errorf("code[0] = %x, want 30", codes[0])
	}
	if codes[143] != 0xBF {
		t.Errorf("code[143] = %x, want bf", codes[143])
	}
	if codes[144] != 0x190 {
		t.Errorf("code[144] = %x, want 190", codes[144])
	}
	if codes[255] != 0x1FF {
		t.Errorf("code[255] = %x, want 1ff", codes[255])
	}
	if codes[256] != 0 {
		t.Errorf("code[256] = %x, want 0", codes[256])
	}
	if codes[279] != 0x17 {
		t.Errorf("code[279] = %x, want 17", codes[279])
	}
	if codes[280] != 0xC0 {
		t.Errorf("code[280] = %x, want c0", codes[280])
	}
	if codes[287] != 0xC7 {
		t.Errorf("code[287] = %x, want c7", codes[287])
	}
}

// --- adler32 ---

func TestAdlerMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 17, 5551, 5552, 5553, 100000} {
		data := make([]byte, n)
		rng.Read(data)
		if got, want := AdlerChecksum(data), adler32.Checksum(data); got != want {
			t.Fatalf("n=%d: adler %08x, want %08x", n, got, want)
		}
	}
}

func TestAdlerIncremental(t *testing.T) {
	data := []byte("incremental adler check over several writes")
	h := NewAdler32()
	for i := 0; i < len(data); i += 7 {
		end := i + 7
		if end > len(data) {
			end = len(data)
		}
		h.Write(data[i:end])
	}
	if h.Sum32() != adler32.Checksum(data) {
		t.Fatal("incremental checksum differs")
	}
}

func TestQuickAdler(t *testing.T) {
	f := func(data []byte) bool {
		return AdlerChecksum(data) == adler32.Checksum(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- encoder vs stdlib flate decoder (the interop the paper claims) ---

func lzssCompress(t *testing.T, src []byte) []token.Command {
	t.Helper()
	cmds, _, err := lzss.Compress(src, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	return cmds
}

func stdlibInflate(t *testing.T, body []byte) []byte {
	t.Helper()
	r := flate.NewReader(bytes.NewReader(body))
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("stdlib flate rejected our stream: %v", err)
	}
	return out
}

func TestFixedDeflateStdlibInterop(t *testing.T) {
	srcs := [][]byte{
		[]byte("snowy snow"),
		[]byte(strings.Repeat("embedded CAN logger frame 0x1A2B ", 300)),
		{},
		[]byte{0, 255, 128, 7},
		bytes.Repeat([]byte{0xAA}, 1000),
	}
	for i, src := range srcs {
		body, err := FixedDeflate(lzssCompress(t, src))
		if err != nil {
			t.Fatal(err)
		}
		if got := stdlibInflate(t, body); !bytes.Equal(got, src) {
			t.Fatalf("case %d: stdlib decoded %d bytes, want %d", i, len(got), len(src))
		}
	}
}

func TestFixedDeflateAllLiteralValues(t *testing.T) {
	// Exercise both the 8-bit (0-143) and 9-bit (144-255) literal ranges.
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	var cmds []token.Command
	for _, b := range src {
		cmds = append(cmds, token.Lit(b))
	}
	body, err := FixedDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if got := stdlibInflate(t, body); !bytes.Equal(got, src) {
		t.Fatal("literal sweep mismatch via stdlib")
	}
	got, err := Inflate(body)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("literal sweep mismatch via own inflater: %v", err)
	}
}

func TestFixedDeflateAllLengths(t *testing.T) {
	// One command for every legal match length.
	src := []byte("abc")
	cmds := []token.Command{token.Lit('a'), token.Lit('b'), token.Lit('c')}
	for l := token.MinMatch; l <= token.MaxMatch; l++ {
		cmds = append(cmds, token.Copy(3, l))
	}
	want, err := token.Expand(cmds)
	if err != nil {
		t.Fatal(err)
	}
	_ = src
	body, err := FixedDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if got := stdlibInflate(t, body); !bytes.Equal(got, want) {
		t.Fatal("length sweep mismatch via stdlib")
	}
}

func TestFixedDeflateDistanceSweep(t *testing.T) {
	// Build a long literal run, then matches at many distances
	// including every distance-code boundary.
	var cmds []token.Command
	for i := 0; i < 32768; i++ {
		cmds = append(cmds, token.Lit(byte(i*31)))
	}
	for _, d := range []int{1, 2, 3, 4, 5, 7, 9, 13, 25, 193, 256, 257, 385, 513, 1025, 3073, 4096, 8192, 16384, 24577, 32768} {
		cmds = append(cmds, token.Copy(d, 10))
	}
	want, err := token.Expand(cmds)
	if err != nil {
		t.Fatal(err)
	}
	body, err := FixedDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if got := stdlibInflate(t, body); !bytes.Equal(got, want) {
		t.Fatal("distance sweep mismatch via stdlib")
	}
	got, err := Inflate(body)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("distance sweep mismatch via own inflater: %v", err)
	}
}

func TestZlibCompressStdlibInterop(t *testing.T) {
	src := []byte(strings.Repeat("wiki snapshot text with redundancy redundancy ", 500))
	for _, window := range []int{1024, 4096, 32768} {
		p := lzss.HWSpeedParams()
		p.Window = window
		cmds, _, err := lzss.Compress(src, p)
		if err != nil {
			t.Fatal(err)
		}
		z, err := ZlibCompress(cmds, src, window)
		if err != nil {
			t.Fatal(err)
		}
		zr, err := zlib.NewReader(bytes.NewReader(z))
		if err != nil {
			t.Fatalf("window %d: stdlib zlib header rejected: %v", window, err)
		}
		got, err := io.ReadAll(zr)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("window %d: stdlib zlib round trip failed: %v", window, err)
		}
		// And through our own container parser.
		own, err := ZlibDecompress(z)
		if err != nil || !bytes.Equal(own, src) {
			t.Fatalf("window %d: own zlib round trip failed: %v", window, err)
		}
	}
}

func TestZlibHeaderValues(t *testing.T) {
	h, err := ZlibHeader(32768)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 0x78 {
		t.Fatalf("CMF for 32K window = %02x, want 78", h[0])
	}
	if (uint32(h[0])*256+uint32(h[1]))%31 != 0 {
		t.Fatal("FCHECK invalid")
	}
	if _, err := ZlibHeader(1000); err == nil {
		t.Fatal("non-power-of-two window accepted")
	}
	if _, err := ZlibHeader(65536); err == nil {
		t.Fatal("oversized window accepted")
	}
}

// --- our inflater vs stdlib deflate encoder ---

func TestInflateDecodesStdlibOutput(t *testing.T) {
	srcs := [][]byte{
		[]byte("hello hello hello"),
		[]byte(strings.Repeat("dynamic huffman fodder - many distinct words mixed ", 200)),
		make([]byte, 10000),
	}
	rand.New(rand.NewSource(2)).Read(srcs[2])
	for _, level := range []int{0, 1, 6, 9} { // 0 = stored blocks
		for i, src := range srcs {
			var buf bytes.Buffer
			w, err := flate.NewWriter(&buf, level)
			if err != nil {
				t.Fatal(err)
			}
			w.Write(src)
			w.Close()
			got, err := Inflate(buf.Bytes())
			if err != nil {
				t.Fatalf("level %d case %d: %v", level, i, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("level %d case %d: mismatch", level, i)
			}
		}
	}
}

func TestZlibDecompressStdlibOutput(t *testing.T) {
	src := []byte(strings.Repeat("zlib container interop ", 100))
	var buf bytes.Buffer
	w := zlib.NewWriter(&buf)
	w.Write(src)
	w.Close()
	got, err := ZlibDecompress(buf.Bytes())
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("decode stdlib zlib: %v", err)
	}
}

// --- stored blocks ---

func TestStoredDeflate(t *testing.T) {
	for _, n := range []int{0, 1, 65535, 65536, 200000} {
		src := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(src)
		body, err := StoredDeflate(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := stdlibInflate(t, body); !bytes.Equal(got, src) {
			t.Fatalf("n=%d: stored round trip via stdlib failed", n)
		}
		got, err := Inflate(body)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("n=%d: stored round trip via own inflater failed: %v", n, err)
		}
	}
}

// --- corrupt input handling ---

func TestInflateRejectsCorrupt(t *testing.T) {
	body, err := FixedDeflate([]token.Command{token.Lit('x')})
	if err != nil {
		t.Fatal(err)
	}
	// Reserved block type.
	if _, err := Inflate([]byte{0x07}); err == nil {
		t.Error("reserved block type accepted")
	}
	// Truncation.
	if _, err := Inflate(body[:0]); err == nil {
		t.Error("empty stream accepted")
	}
	// Stored length check violation.
	if _, err := Inflate([]byte{0x01, 0x05, 0x00, 0x00, 0x00}); err == nil {
		t.Error("bad NLEN accepted")
	}
}

func TestZlibDecompressRejectsCorrupt(t *testing.T) {
	src := []byte("checksummed payload")
	cmds := lzssCompress(t, src)
	z, err := ZlibCompress(cmds, src, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a trailer bit: Adler must catch it.
	bad := append([]byte(nil), z...)
	bad[len(bad)-1] ^= 1
	if _, err := ZlibDecompress(bad); err == nil {
		t.Error("corrupt adler accepted")
	}
	// Bad header check.
	bad2 := append([]byte(nil), z...)
	bad2[1] ^= 1
	if _, err := ZlibDecompress(bad2); err == nil {
		t.Error("bad FCHECK accepted")
	}
	if _, err := ZlibDecompress([]byte{0x78}); err == nil {
		t.Error("short stream accepted")
	}
}

func TestHuffDecRejectsBadCodes(t *testing.T) {
	if _, err := newHuffDec(make([]uint8, 10)); err == nil {
		t.Error("all-zero lengths accepted")
	}
	over := []uint8{1, 1, 1} // three codes of length 1: over-subscribed
	if _, err := newHuffDec(over); err == nil {
		t.Error("over-subscribed code accepted")
	}
	if _, err := newHuffDec([]uint8{16}); err == nil {
		t.Error("length 16 accepted")
	}
}

// --- CommandBits cost model ---

func TestCommandBitsMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var cmds []token.Command
	for i := 0; i < 2000; i++ {
		cmds = append(cmds, token.Lit(byte(rng.Intn(256))))
	}
	for i := 0; i < 2000; i++ {
		cmds = append(cmds, token.Copy(1+rng.Intn(32000), token.MinMatch+rng.Intn(256)))
	}
	wantBits := 3 // block header
	for _, c := range cmds {
		wantBits += CommandBits(c)
	}
	wantBits += 7 // end-of-block symbol
	// Compare against the encoder's actual bit count (before padding).
	var buf bytes.Buffer
	bw := newBitWriter(&buf)
	e := NewEncoder(bw)
	e.BeginBlock(true)
	for _, c := range cmds {
		if err := e.Encode(c); err != nil {
			t.Fatal(err)
		}
	}
	e.EndBlock()
	if got := int(bw.BitsWritten()); got != wantBits {
		t.Fatalf("encoder wrote %d bits, cost model says %d", got, wantBits)
	}
}

// --- property tests: full pipeline round trip ---

func TestQuickPipelineRoundTrip(t *testing.T) {
	p := lzss.Params{Window: 1024, HashBits: 10, MaxChain: 8, Nice: 32, InsertLimit: 8}
	f := func(data []byte, mod uint8) bool {
		m := int(mod%7) + 2
		for i := range data {
			data[i] = byte(int(data[i]) % m)
		}
		cmds, _, err := lzss.Compress(data, p)
		if err != nil {
			return false
		}
		z, err := ZlibCompress(cmds, data, p.Window)
		if err != nil {
			return false
		}
		out, err := ZlibDecompress(z)
		if err != nil || !bytes.Equal(out, data) {
			return false
		}
		// Stdlib must agree too.
		zr, err := zlib.NewReader(bytes.NewReader(z))
		if err != nil {
			return false
		}
		sout, err := io.ReadAll(zr)
		return err == nil && bytes.Equal(sout, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFixedDeflate(b *testing.B) {
	src := []byte(strings.Repeat("benchmark payload with repeats repeats ", 1600))[:65536]
	cmds, _, err := lzss.Compress(src, lzss.HWSpeedParams())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FixedDeflate(cmds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInflate(b *testing.B) {
	src := []byte(strings.Repeat("benchmark payload with repeats repeats ", 1600))[:65536]
	cmds, _, err := lzss.Compress(src, lzss.HWSpeedParams())
	if err != nil {
		b.Fatal(err)
	}
	body, err := FixedDeflate(cmds)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Inflate(body); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInflateNeverPanicsOnCorrupt(t *testing.T) {
	// Bit-flip fuzz over valid streams: the decoder may reject or (for
	// flips landing in stored payloads) produce different bytes, but it
	// must never panic or hang.
	src := []byte(strings.Repeat("robustness fodder 012345 ", 300))
	cmds, _, err := lzss.Compress(src, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	bodies := [][]byte{}
	if b, err := FixedDeflate(cmds); err == nil {
		bodies = append(bodies, b)
	}
	if b, err := DynamicDeflate(cmds); err == nil {
		bodies = append(bodies, b)
	}
	if b, err := StoredDeflate(src[:1000]); err == nil {
		bodies = append(bodies, b)
	}
	rng := rand.New(rand.NewSource(90))
	for _, body := range bodies {
		for trial := 0; trial < 400; trial++ {
			mut := append([]byte(nil), body...)
			flips := 1 + rng.Intn(4)
			for f := 0; f < flips; f++ {
				mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Inflate panicked on corrupt input: %v", r)
					}
				}()
				Inflate(mut)       //nolint:errcheck
				ParseCommands(mut) //nolint:errcheck
			}()
		}
	}
}

func TestInflateRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 500; trial++ {
		garbage := make([]byte, rng.Intn(200))
		rng.Read(garbage)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on garbage: %v", r)
				}
			}()
			Inflate(garbage)        //nolint:errcheck
			ZlibDecompress(garbage) //nolint:errcheck
			GzipDecompress(garbage) //nolint:errcheck
		}()
	}
}

func TestInflateRejectsReservedSymbols(t *testing.T) {
	// Craft a fixed-Huffman block that emits symbol 286 (reserved: the
	// fixed tree defines its code but RFC 1951 forbids its use).
	codes := canonicalCodes(fixedLitLenLengths())
	var buf bytes.Buffer
	bw := newBitWriter(&buf)
	bw.WriteBool(true)    // BFINAL
	bw.WriteBits(0b01, 2) // fixed
	bw.WriteBitsRev(uint32(codes[286]), 8)
	bw.Flush()
	if _, err := Inflate(buf.Bytes()); err == nil {
		t.Fatal("reserved length symbol 286 accepted")
	}
	// And a distance symbol >= 30 after a valid length code.
	buf.Reset()
	bw.Reset(&buf)
	bw.WriteBool(true)
	bw.WriteBits(0b01, 2)
	// Emit 4 literals so a match has history, then length code 257 (len 3).
	for i := 0; i < 4; i++ {
		bw.WriteBitsRev(uint32(codes['a']), 8)
	}
	bw.WriteBitsRev(uint32(codes[257]), 7)
	// Fixed distance codes are 5 bits; 30 = 0b11110.
	bw.WriteBitsRev(30, 5)
	bw.Flush()
	if _, err := Inflate(buf.Bytes()); err == nil {
		t.Fatal("reserved distance symbol 30 accepted")
	}
}
