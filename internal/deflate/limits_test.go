package deflate

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"lzssfpga/internal/lzss"
)

// zlibCompress is a test helper producing a valid zlib stream.
func zlibCompress(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestInflateLimitedOutputCap(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KiB, compresses well
	cmds, _, err := lzss.Compress(data, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	body, err := FixedDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}

	// Over the cap: typed rejection, both sentinels visible.
	_, err = InflateLimited(body, DecodeLimits{MaxOutputBytes: 1024})
	if !errors.Is(err, ErrLimit) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("cap violation returned %v", err)
	}

	// At the cap: decodes fine.
	out, err := InflateLimited(body, DecodeLimits{MaxOutputBytes: len(data)})
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("decode at exact cap: %v", err)
	}

	// Zero cap: unlimited.
	if _, err := InflateLimited(body, DecodeLimits{}); err != nil {
		t.Fatalf("unlimited decode: %v", err)
	}
}

func TestInflateLimitedStoredCap(t *testing.T) {
	// A single stored block of 2000 bytes against a 100-byte cap.
	var stream []byte
	stream = append(stream, 0x01, 0xD0, 0x07, 0x2F, 0xF8) // final, LEN=2000, NLEN
	stream = append(stream, make([]byte, 2000)...)
	if _, err := InflateLimited(stream, DecodeLimits{MaxOutputBytes: 100}); !errors.Is(err, ErrLimit) {
		t.Fatalf("stored block over cap returned %v", err)
	}
	if out, err := InflateLimited(stream, DecodeLimits{MaxOutputBytes: 2000}); err != nil || len(out) != 2000 {
		t.Fatalf("stored block at cap: %d bytes, %v", len(out), err)
	}
}

func TestInflateLimitedBlockCap(t *testing.T) {
	// Endless empty non-final stored blocks: MaxBlocks is the only
	// thing that terminates this stream shape.
	var stream []byte
	for i := 0; i < 50; i++ {
		stream = append(stream, 0x00, 0x00, 0x00, 0xFF, 0xFF)
	}
	stream = append(stream, 0x01, 0x00, 0x00, 0xFF, 0xFF)
	if out, err := InflateLimited(stream, DecodeLimits{MaxBlocks: 100}); err != nil || len(out) != 0 {
		t.Fatalf("51 blocks under a 100-block cap: %v", err)
	}
	if _, err := InflateLimited(stream, DecodeLimits{MaxBlocks: 10}); !errors.Is(err, ErrLimit) {
		t.Fatalf("51 blocks under a 10-block cap returned %v", err)
	}
}

func TestTruncationErrorsAreTyped(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox ", 200))
	z := zlibCompress(t, data)
	body := z[2 : len(z)-4]

	// Every proper prefix must fail with ErrCorrupt, and truncations
	// must also match io.ErrUnexpectedEOF — never panic, never succeed.
	for cut := 0; cut < len(body); cut++ {
		_, err := Inflate(body[:cut])
		if err == nil {
			t.Fatalf("prefix %d/%d decoded successfully", cut, len(body))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
	// Cutting inside the bit stream (past the headers) is a truncation
	// specifically.
	if _, err := Inflate(body[:len(body)/2]); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-stream truncation: %v does not match io.ErrUnexpectedEOF", err)
	}

	// Same contract for the zlib container.
	for cut := 0; cut < len(z); cut++ {
		_, err := ZlibDecompress(z[:cut])
		if err == nil {
			t.Fatalf("zlib prefix %d/%d decoded successfully", cut, len(z))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("zlib prefix %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

func TestStreamReaderTruncationTyped(t *testing.T) {
	data := []byte(strings.Repeat("stream truncation contract ", 100))
	z := zlibCompress(t, data)
	for _, cut := range []int{1, 2, 5, len(z) / 4, len(z) / 2, len(z) - 5, len(z) - 1} {
		zr, err := NewReader(bytes.NewReader(z[:cut]))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d: NewReader error %v not typed", cut, err)
			}
			continue
		}
		_, err = io.ReadAll(zr)
		if err == nil {
			t.Fatalf("cut=%d/%d: truncated stream read to clean EOF", cut, len(z))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: read error %v not typed", cut, err)
		}
	}

	// The intact stream still reads cleanly.
	zr, err := NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("intact stream: %v", err)
	}
}
