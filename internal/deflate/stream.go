package deflate

import (
	"fmt"
	"io"

	"lzssfpga/internal/bitio"
	"lzssfpga/internal/lzss"
	"lzssfpga/internal/token"
)

// Writer is a streaming zlib compressor: an incremental LZSS stage
// (lzss.StreamCompressor) feeding per-block Huffman encoding. Each
// block is emitted as fixed or dynamic, whichever is smaller for its
// symbol statistics; Close finishes the stream with the final block and
// the Adler-32 trailer. Output is standard RFC 1950.
type Writer struct {
	w       *countWriter
	bw      *bitio.Writer
	sc      *lzss.StreamCompressor
	adler   *Adler32
	pending []token.Command
	window  int
	closed  bool
	err     error
	// Observability accumulators, flushed to the deflate_stream_*
	// metrics at block/flush/close granularity.
	obsIn, obsInFlushed, obsOutFlushed int64
}

// countWriter counts bytes on their way to the underlying writer so
// the stream metrics can report compressed output volume without
// involving the bit writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// flushObs publishes the writer's input/output byte deltas (and the
// LZSS stage's counters) into the wired registry, if any.
func (zw *Writer) flushObs() {
	k := deflateObs.Load()
	if k == nil {
		return
	}
	k.streamInBytes.Add(zw.obsIn - zw.obsInFlushed)
	zw.obsInFlushed = zw.obsIn
	k.streamOutBytes.Add(zw.w.n - zw.obsOutFlushed)
	zw.obsOutFlushed = zw.w.n
	zw.sc.FlushObs()
}

// blockCommands is how many LZSS commands accumulate before a block is
// cut: large enough for stable per-block statistics, small enough to
// bound latency and memory.
const blockCommands = 32768

// NewWriter starts a zlib stream on w with matching parameters p.
func NewWriter(w io.Writer, p lzss.Params) (*Writer, error) {
	sc, err := lzss.NewStreamCompressor(p)
	if err != nil {
		return nil, err
	}
	hdr, err := ZlibHeader(p.Window)
	if err != nil {
		return nil, err
	}
	cw := &countWriter{w: w}
	if _, err := cw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{
		w:      cw,
		bw:     bitio.NewWriter(cw),
		sc:     sc,
		adler:  NewAdler32(),
		window: p.Window,
	}, nil
}

// Write implements io.Writer.
func (zw *Writer) Write(p []byte) (int, error) {
	if zw.err != nil {
		return 0, zw.err
	}
	if zw.closed {
		return 0, fmt.Errorf("deflate: write after Close")
	}
	zw.adler.Write(p)
	zw.obsIn += int64(len(p))
	zw.pending = append(zw.pending, zw.sc.Write(p)...)
	for len(zw.pending) >= blockCommands {
		if err := zw.emitBlock(zw.pending[:blockCommands], false); err != nil {
			return 0, err
		}
		zw.pending = zw.pending[blockCommands:]
	}
	return len(p), nil
}

// emitBlock writes one block, choosing the cheaper of fixed/dynamic.
func (zw *Writer) emitBlock(cmds []token.Command, final bool) error {
	if k := deflateObs.Load(); k != nil {
		k.streamBlocks.Inc()
	}
	plan := planDynamic(cmds)
	dynBits := plan.headerBits() + plan.bodyBits(cmds)
	fixBits := 7 // end-of-block
	for _, c := range cmds {
		fixBits += CommandBits(c)
	}
	if dynBits < fixBits {
		if err := plan.emit(zw.bw, cmds, final); err != nil {
			zw.err = err
			return err
		}
	} else {
		e := NewEncoder(zw.bw)
		e.BeginBlock(final)
		if err := e.EncodeAll(cmds); err != nil {
			zw.err = err
			return err
		}
		e.EndBlock()
	}
	if err := zw.bw.Err(); err != nil {
		zw.err = err
	}
	return zw.err
}

// Flush emits everything written so far as complete, byte-aligned
// Deflate blocks (ZLib's Z_SYNC_FLUSH): the LZSS stage processes its
// buffered tail, the pending commands become a block, and an empty
// stored block re-aligns the bit stream so a reader sees all data
// without waiting for Close. Compression at the flush point degrades
// slightly, as with any sync flush.
func (zw *Writer) Flush() error {
	if zw.err != nil {
		return zw.err
	}
	if zw.closed {
		return fmt.Errorf("deflate: flush after Close")
	}
	if k := deflateObs.Load(); k != nil {
		k.streamFlushes.Inc()
	}
	zw.pending = append(zw.pending, zw.sc.Flush()...)
	if len(zw.pending) > 0 {
		if err := zw.emitBlock(zw.pending, false); err != nil {
			return err
		}
		zw.pending = zw.pending[:0]
	}
	// Empty stored block: byte alignment + a visible flush marker.
	zw.bw.WriteBool(false)
	zw.bw.WriteBits(0b00, 2)
	zw.bw.AlignByte()
	zw.bw.WriteBits(0, 16)
	zw.bw.WriteBits(0xFFFF, 16)
	if err := zw.bw.Flush(); err != nil {
		zw.err = err
	}
	zw.flushObs()
	return zw.err
}

// Close flushes the final block and the Adler-32 trailer.
func (zw *Writer) Close() error {
	if zw.err != nil {
		return zw.err
	}
	if zw.closed {
		return nil
	}
	zw.closed = true
	zw.pending = append(zw.pending, zw.sc.Close()...)
	// Emit everything left as the final block (an empty final block is
	// legal and needed for empty streams).
	if err := zw.emitBlock(zw.pending, true); err != nil {
		return err
	}
	zw.pending = nil
	if err := zw.bw.Flush(); err != nil {
		zw.err = err
		return err
	}
	sum := zw.adler.Sum32()
	_, err := zw.w.Write([]byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	zw.err = err
	zw.flushObs()
	return err
}

// StreamInflater is an incremental raw-Deflate decoder implementing
// io.Reader. It keeps the 32 KB history window needed to resolve
// back-references across Read calls.
type StreamInflater struct {
	br   *bitio.Reader
	hist [32768]byte
	hpos int
	hlen int

	lit, dist *huffDec
	inBlock   bool
	stored    int  // remaining stored-block bytes (when storedMode)
	storedMod bool // current block is stored
	finalBlk  bool
	done      bool

	// In-flight copy when a match straddles a Read boundary.
	copyLen  int
	copyDist int

	err error
}

// NewStreamInflater decodes the raw Deflate stream from r.
func NewStreamInflater(r io.Reader) *StreamInflater {
	return &StreamInflater{br: bitio.NewReader(r)}
}

func (d *StreamInflater) record(b byte) {
	d.hist[d.hpos] = b
	d.hpos = (d.hpos + 1) & 32767
	if d.hlen < 32768 {
		d.hlen++
	}
}

// Read implements io.Reader.
func (d *StreamInflater) Read(p []byte) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	n := 0
	for n < len(p) {
		if d.copyLen > 0 {
			src := (d.hpos - d.copyDist + 65536) & 32767
			b := d.hist[src]
			d.record(b)
			p[n] = b
			n++
			d.copyLen--
			continue
		}
		if d.done {
			d.err = io.EOF
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		if !d.inBlock {
			if err := d.beginBlock(); err != nil {
				d.err = normEOF(err)
				return n, d.err
			}
			continue
		}
		if d.storedMod {
			if d.stored == 0 {
				d.endBlock()
				continue
			}
			v, err := d.br.ReadBits(8)
			if err != nil {
				d.err = normEOF(err)
				return n, d.err
			}
			b := byte(v)
			d.record(b)
			p[n] = b
			n++
			d.stored--
			continue
		}
		sym, err := d.lit.decode(d.br)
		if err != nil {
			d.err = normEOF(err)
			return n, d.err
		}
		switch {
		case sym < 256:
			b := byte(sym)
			d.record(b)
			p[n] = b
			n++
		case sym == endOfBlock:
			d.endBlock()
		case sym <= maxLitLen:
			if err := d.startCopy(sym); err != nil {
				d.err = normEOF(err)
				return n, d.err
			}
		default:
			d.err = fmt.Errorf("%w: literal/length symbol %d", ErrCorrupt, sym)
			return n, d.err
		}
	}
	return n, nil
}

func (d *StreamInflater) beginBlock() error {
	final, err := d.br.ReadBool()
	if err != nil {
		return err
	}
	btype, err := d.br.ReadBits(2)
	if err != nil {
		return err
	}
	d.finalBlk = final
	d.inBlock = true
	d.storedMod = false
	switch btype {
	case 0:
		d.br.AlignByte()
		ln, err := d.br.ReadBits(16)
		if err != nil {
			return err
		}
		nlen, err := d.br.ReadBits(16)
		if err != nil {
			return err
		}
		if ln != ^nlen&0xFFFF {
			return fmt.Errorf("%w: stored length check", ErrCorrupt)
		}
		d.storedMod = true
		d.stored = int(ln)
	case 1:
		d.lit, d.dist = fixedLitDec, fixedDistDec
	case 2:
		lit, dist, err := readDynamicHeader(d.br)
		if err != nil {
			return err
		}
		d.lit, d.dist = lit, dist
	default:
		return fmt.Errorf("%w: reserved block type", ErrCorrupt)
	}
	return nil
}

func (d *StreamInflater) endBlock() {
	d.inBlock = false
	if d.finalBlk {
		d.done = true
	}
}

func (d *StreamInflater) startCopy(sym int) error {
	i := sym - 257
	length := int(lengthBase[i])
	if lengthExtra[i] > 0 {
		e, err := d.br.ReadBits(uint(lengthExtra[i]))
		if err != nil {
			return err
		}
		length += int(e)
	}
	dsym, err := d.dist.decode(d.br)
	if err != nil {
		return err
	}
	if dsym >= numDistSym {
		return fmt.Errorf("%w: distance symbol %d", ErrCorrupt, dsym)
	}
	dist := int(distBase[dsym])
	if distExtra[dsym] > 0 {
		e, err := d.br.ReadBits(uint(distExtra[dsym]))
		if err != nil {
			return err
		}
		dist += int(e)
	}
	if dist > d.hlen {
		return fmt.Errorf("%w: distance %d exceeds history %d", ErrCorrupt, dist, d.hlen)
	}
	d.copyLen, d.copyDist = length, dist
	return nil
}

// Reader is the streaming zlib (RFC 1950) decompressor: header check,
// incremental inflate, Adler-32 verification at end of stream.
type Reader struct {
	d     *StreamInflater
	adler *Adler32
	eof   bool
	err   error
}

// NewReader parses the zlib header from r and returns a streaming
// decompressor for the body.
func NewReader(r io.Reader) (*Reader, error) {
	d := NewStreamInflater(r)
	cmf, err := d.br.ReadBits(8)
	if err != nil {
		return nil, normEOF(err)
	}
	flg, err := d.br.ReadBits(8)
	if err != nil {
		return nil, normEOF(err)
	}
	if cmf&0x0F != 8 {
		return nil, fmt.Errorf("%w: compression method %d", ErrCorrupt, cmf&0x0F)
	}
	if (cmf*256+flg)%31 != 0 {
		return nil, fmt.Errorf("%w: zlib header check", ErrCorrupt)
	}
	if flg&0x20 != 0 {
		return nil, fmt.Errorf("%w: preset dictionary unsupported", ErrCorrupt)
	}
	return &Reader{d: d, adler: NewAdler32()}, nil
}

// Read implements io.Reader; on clean EOF the Adler-32 trailer has been
// verified.
func (zr *Reader) Read(p []byte) (int, error) {
	if zr.err != nil {
		return 0, zr.err
	}
	n, err := zr.d.Read(p)
	zr.adler.Write(p[:n])
	if err == io.EOF && !zr.eof {
		zr.eof = true
		if terr := zr.checkTrailer(); terr != nil {
			zr.err = terr
			return n, terr
		}
	}
	if err != nil {
		zr.err = err
	}
	return n, err
}

func (zr *Reader) checkTrailer() error {
	zr.d.br.AlignByte()
	var want uint32
	for i := 0; i < 4; i++ {
		v, err := zr.d.br.ReadBits(8)
		if err != nil {
			return fmt.Errorf("%w: truncated adler trailer: %w", ErrCorrupt, io.ErrUnexpectedEOF)
		}
		want = want<<8 | v
	}
	if got := zr.adler.Sum32(); got != want {
		return fmt.Errorf("%w: adler32 %08x != %08x", ErrCorrupt, got, want)
	}
	return nil
}
