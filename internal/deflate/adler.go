package deflate

import "lzssfpga/internal/checksum"

// Adler32 is the zlib container checksum, provided by the shared
// checksum package.
type Adler32 = checksum.Adler32

// NewAdler32 returns the checksum in its initial state (value 1).
func NewAdler32() *Adler32 { return checksum.NewAdler32() }

// AdlerChecksum is a convenience one-shot over data.
func AdlerChecksum(data []byte) uint32 { return checksum.Adler32Sum(data) }
