package deflate

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"lzssfpga/internal/bitio"
)

// ErrLimit reports that a stream, while possibly well-formed, asked the
// decoder to exceed a configured resource bound. It is wrapped together
// with ErrCorrupt so existing errors.Is(err, ErrCorrupt) checks treat a
// limit hit as a rejected stream.
var ErrLimit = errors.New("deflate: decode limit exceeded")

// DecodeLimits bounds what a decoder will do for untrusted input.
// Deflate can expand 1 byte of input into ~1032 bytes of output, so a
// tiny hostile stream can demand gigabytes; these caps make the decoder
// safe to expose to data straight off the wire. The zero value of a
// field means "unlimited" for that axis.
type DecodeLimits struct {
	// MaxOutputBytes caps the decompressed size.
	MaxOutputBytes int
	// MaxBlocks caps the number of Deflate blocks (a stream of endless
	// empty non-final blocks never produces output but never ends).
	MaxBlocks int
}

// DefaultDecodeLimits is what the unqualified entry points (Inflate,
// ZlibDecompress) enforce: generous for any legitimate testbench corpus,
// finite for hostile input.
func DefaultDecodeLimits() DecodeLimits {
	return DecodeLimits{
		MaxOutputBytes: 1 << 30,
		MaxBlocks:      1 << 20,
	}
}

func errOutputLimit(lim DecodeLimits) error {
	return fmt.Errorf("%w: %w: output exceeds %d bytes", ErrCorrupt, ErrLimit, lim.MaxOutputBytes)
}

// normEOF maps the reader-level end-of-input errors (bitio's sentinel,
// or a bare io.EOF from a source that ended mid-structure) onto the
// package's corruption contract: every truncation surfaces as an error
// matching both ErrCorrupt and io.ErrUnexpectedEOF. Errors already
// carrying ErrCorrupt pass through untouched.
func normEOF(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return err
	}
	if errors.Is(err, bitio.ErrUnexpectedEOF) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: truncated stream: %w", ErrCorrupt, io.ErrUnexpectedEOF)
	}
	return err
}

// InflateLimited decodes a complete raw Deflate stream under lim. It
// never panics on any input: structural violations and truncations
// return errors wrapping ErrCorrupt (truncations additionally match
// io.ErrUnexpectedEOF), and output allocation never exceeds
// lim.MaxOutputBytes by more than one stored block's bounded slack.
func InflateLimited(data []byte, lim DecodeLimits) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("%w: panic during decode: %v", ErrCorrupt, r)
		}
	}()
	return inflateBlocks(bitio.NewReader(bytes.NewReader(data)), nil, lim)
}

// inflateBlocks is the shared block loop: decode until the final block,
// appending to out (which may be pre-seeded with preset-dictionary
// history — the limit accounting and match distances then measure the
// seeded slice, so callers adjust MaxOutputBytes by the seed length).
func inflateBlocks(br *bitio.Reader, out []byte, lim DecodeLimits) ([]byte, error) {
	blocks := 0
	for {
		if lim.MaxBlocks > 0 && blocks >= lim.MaxBlocks {
			return nil, fmt.Errorf("%w: %w: more than %d blocks", ErrCorrupt, ErrLimit, lim.MaxBlocks)
		}
		blocks++
		final, err := br.ReadBool()
		if err != nil {
			return nil, normEOF(err)
		}
		btype, err := br.ReadBits(2)
		if err != nil {
			return nil, normEOF(err)
		}
		switch btype {
		case 0:
			out, err = inflateStored(br, out, lim)
		case 1:
			out, err = inflateCompressed(br, out, fixedLitDec, fixedDistDec, lim)
		case 2:
			var lit, dist *huffDec
			lit, dist, err = readDynamicHeader(br)
			if err == nil {
				out, err = inflateCompressed(br, out, lit, dist, lim)
			}
		default:
			return nil, fmt.Errorf("%w: reserved block type", ErrCorrupt)
		}
		if err != nil {
			return nil, normEOF(err)
		}
		if final {
			return out, nil
		}
	}
}

// ZlibDecompressLimited parses an RFC 1950 container under lim,
// inflates the body, and verifies the Adler-32 trailer. Same no-panic
// and error-typing guarantees as InflateLimited.
func ZlibDecompressLimited(data []byte, lim DecodeLimits) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("%w: panic during decode: %v", ErrCorrupt, r)
		}
	}()
	if len(data) < 6 {
		return nil, fmt.Errorf("%w: zlib stream too short: %w", ErrCorrupt, io.ErrUnexpectedEOF)
	}
	cmf, flg := data[0], data[1]
	if cmf&0x0F != 8 {
		return nil, fmt.Errorf("%w: compression method %d", ErrCorrupt, cmf&0x0F)
	}
	if (uint32(cmf)*256+uint32(flg))%31 != 0 {
		return nil, fmt.Errorf("%w: zlib header check", ErrCorrupt)
	}
	if flg&0x20 != 0 {
		return nil, fmt.Errorf("%w: preset dictionary unsupported", ErrCorrupt)
	}
	body := data[2 : len(data)-4]
	out, err = InflateLimited(body, lim)
	if err != nil {
		return nil, err
	}
	tr := data[len(data)-4:]
	want := uint32(tr[0])<<24 | uint32(tr[1])<<16 | uint32(tr[2])<<8 | uint32(tr[3])
	if got := AdlerChecksum(out); got != want {
		return nil, fmt.Errorf("%w: adler32 %08x != %08x", ErrCorrupt, got, want)
	}
	return out, nil
}

// ZlibDecompressDictLimited is ZlibDecompressDict under DecodeLimits:
// the hardened preset-dictionary decode path the serving layer exposes
// to data straight off the wire. The dictionary's trailing 32 KiB seed
// the inflater's history (match distances may reach into them), DICTID
// is verified against dict, and the output cap applies to the produced
// bytes — the seeded history does not consume limit budget. Same
// no-panic and error-typing guarantees as ZlibDecompressLimited.
func ZlibDecompressDictLimited(data, dict []byte, lim DecodeLimits) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("%w: panic during decode: %v", ErrCorrupt, r)
		}
	}()
	if len(data) < 10 {
		return nil, fmt.Errorf("%w: dictionary zlib stream too short: %w", ErrCorrupt, io.ErrUnexpectedEOF)
	}
	cmf, flg := data[0], data[1]
	if cmf&0x0F != 8 {
		return nil, fmt.Errorf("%w: compression method %d", ErrCorrupt, cmf&0x0F)
	}
	if (uint32(cmf)*256+uint32(flg))%31 != 0 {
		return nil, fmt.Errorf("%w: zlib header check", ErrCorrupt)
	}
	if flg&0x20 == 0 {
		return nil, fmt.Errorf("%w: stream has no preset dictionary", ErrCorrupt)
	}
	dictID := uint32(data[2])<<24 | uint32(data[3])<<16 | uint32(data[4])<<8 | uint32(data[5])
	if got := AdlerChecksum(dict); got != dictID {
		return nil, fmt.Errorf("%w: DICTID %08x does not match dictionary %08x", ErrCorrupt, dictID, got)
	}
	hist := dict
	if len(hist) > 32768 {
		hist = hist[len(hist)-32768:]
	}
	if lim.MaxOutputBytes > 0 {
		lim.MaxOutputBytes += len(hist)
	}
	seed := append(make([]byte, 0, len(hist)+1024), hist...)
	body := data[6 : len(data)-4]
	full, err := inflateBlocks(bitio.NewReader(bytes.NewReader(body)), seed, lim)
	if err != nil {
		return nil, normEOF(err)
	}
	out = full[len(hist):]
	tr := data[len(data)-4:]
	want := uint32(tr[0])<<24 | uint32(tr[1])<<16 | uint32(tr[2])<<8 | uint32(tr[3])
	if got := AdlerChecksum(out); got != want {
		return nil, fmt.Errorf("%w: adler32 %08x != %08x", ErrCorrupt, got, want)
	}
	return out, nil
}
