package deflate

import (
	"errors"
	"fmt"

	"lzssfpga/internal/bitio"
)

// The inflater is implemented independently of the encoder (canonical
// decode via per-length counts, the "puff" algorithm) so that a bug in
// the encoder's table construction cannot cancel out in round-trip
// tests.

// ErrCorrupt reports a malformed Deflate or ZLib stream.
var ErrCorrupt = errors.New("deflate: corrupt stream")

// huffDec decodes canonical Huffman codes bit by bit.
type huffDec struct {
	counts [maxCodeLen + 1]int
	syms   []int
}

func newHuffDec(lengths []uint8) (*huffDec, error) {
	h := &huffDec{}
	for _, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("%w: code length %d", ErrCorrupt, l)
		}
		h.counts[l]++
	}
	if h.counts[0] == len(lengths) {
		return nil, fmt.Errorf("%w: empty code", ErrCorrupt)
	}
	// Over-subscription check.
	left := 1
	for l := 1; l <= maxCodeLen; l++ {
		left <<= 1
		left -= h.counts[l]
		if left < 0 {
			return nil, fmt.Errorf("%w: over-subscribed code", ErrCorrupt)
		}
	}
	var offs [maxCodeLen + 1]int
	for l := 1; l < maxCodeLen; l++ {
		offs[l+1] = offs[l] + h.counts[l]
	}
	h.syms = make([]int, len(lengths))
	for sym, l := range lengths {
		if l != 0 {
			h.syms[offs[l]] = sym
			offs[l]++
		}
	}
	return h, nil
}

func (h *huffDec) decode(br *bitio.Reader) (int, error) {
	code, first, index := 0, 0, 0
	for l := 1; l <= maxCodeLen; l++ {
		b, err := br.ReadBits(1)
		if err != nil {
			return 0, err
		}
		code |= int(b)
		count := h.counts[l]
		if code-first < count {
			return h.syms[index+code-first], nil
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return 0, fmt.Errorf("%w: invalid Huffman code", ErrCorrupt)
}

var (
	fixedLitDec  *huffDec
	fixedDistDec *huffDec
)

func init() {
	var err error
	fixedLitDec, err = newHuffDec(fixedLitLenLengths())
	if err != nil {
		panic(err)
	}
	fixedDistDec, err = newHuffDec(fixedDistLengths())
	if err != nil {
		panic(err)
	}
}

// codeLengthOrder is the permuted order in which dynamic-block code
// length code lengths are stored (RFC 1951 §3.2.7).
var codeLengthOrder = [19]int{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}

// Inflate decodes a complete raw Deflate stream under
// DefaultDecodeLimits; use InflateLimited to choose the bounds.
func Inflate(data []byte) ([]byte, error) {
	return InflateLimited(data, DefaultDecodeLimits())
}

func inflateStored(br *bitio.Reader, out []byte, lim DecodeLimits) ([]byte, error) {
	br.AlignByte()
	n, err := br.ReadBits(16)
	if err != nil {
		return nil, err
	}
	nlen, err := br.ReadBits(16)
	if err != nil {
		return nil, err
	}
	if n != ^nlen&0xFFFF {
		return nil, fmt.Errorf("%w: stored length check", ErrCorrupt)
	}
	if lim.MaxOutputBytes > 0 && len(out)+int(n) > lim.MaxOutputBytes {
		return nil, errOutputLimit(lim)
	}
	chunk := make([]byte, n)
	if err := br.ReadBytes(chunk); err != nil {
		return nil, err
	}
	return append(out, chunk...), nil
}

func inflateCompressed(br *bitio.Reader, out []byte, lit, dist *huffDec, lim DecodeLimits) ([]byte, error) {
	for {
		sym, err := lit.decode(br)
		if err != nil {
			return nil, err
		}
		switch {
		case sym < 256:
			if lim.MaxOutputBytes > 0 && len(out) >= lim.MaxOutputBytes {
				return nil, errOutputLimit(lim)
			}
			out = append(out, byte(sym))
		case sym == endOfBlock:
			return out, nil
		case sym <= maxLitLen:
			i := sym - 257
			length := int(lengthBase[i])
			if lengthExtra[i] > 0 {
				e, err := br.ReadBits(uint(lengthExtra[i]))
				if err != nil {
					return nil, err
				}
				length += int(e)
			}
			dsym, err := dist.decode(br)
			if err != nil {
				return nil, err
			}
			if dsym >= numDistSym {
				return nil, fmt.Errorf("%w: distance symbol %d", ErrCorrupt, dsym)
			}
			d := int(distBase[dsym])
			if distExtra[dsym] > 0 {
				e, err := br.ReadBits(uint(distExtra[dsym]))
				if err != nil {
					return nil, err
				}
				d += int(e)
			}
			if d > len(out) {
				return nil, fmt.Errorf("%w: distance %d exceeds output %d", ErrCorrupt, d, len(out))
			}
			if lim.MaxOutputBytes > 0 && len(out)+length > lim.MaxOutputBytes {
				return nil, errOutputLimit(lim)
			}
			src := len(out) - d
			for j := 0; j < length; j++ {
				out = append(out, out[src+j])
			}
		default:
			return nil, fmt.Errorf("%w: literal/length symbol %d", ErrCorrupt, sym)
		}
	}
}

func readDynamicHeader(br *bitio.Reader) (lit, dist *huffDec, err error) {
	hlit, err := br.ReadBits(5)
	if err != nil {
		return nil, nil, err
	}
	hdist, err := br.ReadBits(5)
	if err != nil {
		return nil, nil, err
	}
	hclen, err := br.ReadBits(4)
	if err != nil {
		return nil, nil, err
	}
	nLit, nDist, nCl := int(hlit)+257, int(hdist)+1, int(hclen)+4
	if nLit > 286 || nDist > numDistSym {
		return nil, nil, fmt.Errorf("%w: dynamic header counts", ErrCorrupt)
	}
	clLens := make([]uint8, 19)
	for i := 0; i < nCl; i++ {
		v, err := br.ReadBits(3)
		if err != nil {
			return nil, nil, err
		}
		clLens[codeLengthOrder[i]] = uint8(v)
	}
	clDec, err := newHuffDec(clLens)
	if err != nil {
		return nil, nil, err
	}
	lens := make([]uint8, nLit+nDist)
	for i := 0; i < len(lens); {
		sym, err := clDec.decode(br)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case sym < 16:
			lens[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return nil, nil, fmt.Errorf("%w: repeat with no previous length", ErrCorrupt)
			}
			n, err := br.ReadBits(2)
			if err != nil {
				return nil, nil, err
			}
			prev := lens[i-1]
			for j := 0; j < int(n)+3; j++ {
				if i >= len(lens) {
					return nil, nil, fmt.Errorf("%w: repeat overflow", ErrCorrupt)
				}
				lens[i] = prev
				i++
			}
		case sym == 17, sym == 18:
			bitsN, base := uint(3), 3
			if sym == 18 {
				bitsN, base = 7, 11
			}
			n, err := br.ReadBits(bitsN)
			if err != nil {
				return nil, nil, err
			}
			for j := 0; j < int(n)+base; j++ {
				if i >= len(lens) {
					return nil, nil, fmt.Errorf("%w: zero-repeat overflow", ErrCorrupt)
				}
				lens[i] = 0
				i++
			}
		default:
			return nil, nil, fmt.Errorf("%w: code length symbol %d", ErrCorrupt, sym)
		}
	}
	lit, err = newHuffDec(lens[:nLit])
	if err != nil {
		return nil, nil, err
	}
	dist, err = newHuffDec(lens[nLit:])
	if err != nil {
		return nil, nil, err
	}
	return lit, dist, nil
}

// ZlibDecompress parses an RFC 1950 container, inflates the body and
// verifies the Adler-32 trailer, under DefaultDecodeLimits; use
// ZlibDecompressLimited to choose the bounds.
func ZlibDecompress(data []byte) ([]byte, error) {
	return ZlibDecompressLimited(data, DefaultDecodeLimits())
}
