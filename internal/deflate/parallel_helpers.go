package deflate

import (
	"bytes"

	"lzssfpga/internal/bitio"
)

// newSegWriter isolates the bitio dependency for the parallel path.
func newSegWriter(buf *bytes.Buffer) *bitio.Writer { return bitio.NewWriter(buf) }
