package deflate

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"testing"

	"lzssfpga/internal/lzss"
)

// Native fuzz targets (run as seed-corpus tests under `go test`, and as
// mutation fuzzers under `go test -fuzz=...`).

// FuzzInflate feeds arbitrary bytes to every decoder entry point: they
// must reject or decode, never panic.
func FuzzInflate(f *testing.F) {
	seed, _ := FixedDeflate(nil)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0xFF, 0xFF})
	f.Add([]byte{0x78, 0x01, 0x03, 0x00, 0x00, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		Inflate(data)        //nolint:errcheck
		ParseCommands(data)  //nolint:errcheck
		ZlibDecompress(data) //nolint:errcheck
		GzipDecompress(data) //nolint:errcheck
		r := NewStreamInflater(bytes.NewReader(data))
		io.Copy(io.Discard, io.LimitReader(r, 1<<20)) //nolint:errcheck

		// The limited decoders must honor MaxOutputBytes exactly and
		// type every rejection as ErrCorrupt.
		lim := DecodeLimits{MaxOutputBytes: 1 << 16, MaxBlocks: 1 << 10}
		out, err := InflateLimited(data, lim)
		if err == nil && len(out) > lim.MaxOutputBytes {
			t.Fatalf("InflateLimited produced %d bytes over a %d cap", len(out), lim.MaxOutputBytes)
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("InflateLimited error not wrapping ErrCorrupt: %v", err)
		}
		zout, zerr := ZlibDecompressLimited(data, lim)
		if zerr == nil && len(zout) > lim.MaxOutputBytes {
			t.Fatalf("ZlibDecompressLimited produced %d bytes over a %d cap", len(zout), lim.MaxOutputBytes)
		}
		if zerr != nil && !errors.Is(zerr, ErrCorrupt) {
			t.Fatalf("ZlibDecompressLimited error not wrapping ErrCorrupt: %v", zerr)
		}
	})
}

// FuzzRoundTrip compresses arbitrary data through the full pipeline and
// requires exact reproduction, with stdlib agreement.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("snowy snow"), uint8(0))
	f.Add([]byte{}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xAA, 0xBB}, 300), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		p := lzss.HWSpeedParams()
		cmds, _, err := lzss.Compress(data, p)
		if err != nil {
			t.Fatal(err)
		}
		var body []byte
		switch mode % 3 {
		case 0:
			body, err = FixedDeflate(cmds)
		case 1:
			body, err = DynamicDeflate(cmds)
		default:
			body, err = BestDeflate(cmds, data)
		}
		if err != nil {
			t.Fatal(err)
		}
		out, err := Inflate(body)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("own inflater round trip failed: %v", err)
		}
		sr := flate.NewReader(bytes.NewReader(body))
		sout, err := io.ReadAll(sr)
		if err != nil || !bytes.Equal(sout, data) {
			t.Fatalf("stdlib round trip failed: %v", err)
		}
	})
}
