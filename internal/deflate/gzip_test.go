package deflate

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/token"
	"lzssfpga/internal/workload"
)

func TestGzipStdlibDecodesOurs(t *testing.T) {
	data := workload.Wiki(300_000, 80)
	z, err := GzipCompress(data, lzss.HWSpeedParams(), "trace.log")
	if err != nil {
		t.Fatal(err)
	}
	gr, err := gzip.NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatalf("stdlib rejected our gzip header: %v", err)
	}
	if gr.Name != "trace.log" {
		t.Fatalf("stdlib read name %q", gr.Name)
	}
	out, err := io.ReadAll(gr)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("stdlib gzip round trip failed: %v", err)
	}
}

func TestGzipWeDecodeStdlib(t *testing.T) {
	data := workload.CAN(200_000, 81)
	var buf bytes.Buffer
	gw, _ := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	gw.Name = "canbus.bin"
	gw.Write(data)
	gw.Close()
	out, name, err := GzipDecompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) || name != "canbus.bin" {
		t.Fatalf("mismatch (name %q)", name)
	}
}

func TestGzipRoundTripOwn(t *testing.T) {
	for _, n := range []int{0, 1, 1000, 100_000} {
		data := workload.Bitstream(n, int64(n))
		z, err := GzipCompress(data, lzss.HWSpeedParams(), "")
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out, name, err := GzipDecompress(z)
		if err != nil || !bytes.Equal(out, data) || name != "" {
			t.Fatalf("n=%d: round trip failed: %v", n, err)
		}
	}
}

func TestGzipDetectsCorruption(t *testing.T) {
	data := []byte("checksummed gzip payload")
	z, err := GzipCompress(data, lzss.HWSpeedParams(), "")
	if err != nil {
		t.Fatal(err)
	}
	// CRC32 trailer flip.
	bad := append([]byte(nil), z...)
	bad[len(bad)-5] ^= 1
	if _, _, err := GzipDecompress(bad); err == nil {
		t.Fatal("corrupt crc accepted")
	}
	// ISIZE flip.
	bad2 := append([]byte(nil), z...)
	bad2[len(bad2)-1] ^= 1
	if _, _, err := GzipDecompress(bad2); err == nil {
		t.Fatal("corrupt isize accepted")
	}
	// Magic flip.
	bad3 := append([]byte(nil), z...)
	bad3[0] = 0x1E
	if _, _, err := GzipDecompress(bad3); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, err := GzipDecompress(z[:10]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestGzipRejectsNulName(t *testing.T) {
	if _, err := GzipWrap([]byte{3, 0}, nil, "a\x00b"); err == nil {
		t.Fatal("NUL in name accepted")
	}
}

func TestGzipCommands(t *testing.T) {
	data := workload.Wiki(50_000, 82)
	z, err := GzipCompress(data, lzss.HWSpeedParams(), "named")
	if err != nil {
		t.Fatal(err)
	}
	cmds, err := GzipCommands(z)
	if err != nil {
		t.Fatal(err)
	}
	out, err := token.Expand(cmds)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("command view does not reproduce data: %v", err)
	}
}

func TestZlibDictStdlibInterop(t *testing.T) {
	// An embedded-logger dictionary of common record boilerplate.
	dict := []byte("engine rpm= temp= state=OK gps lat= lon= alt= frame id=0x dlc=8 data=")
	data := []byte("engine rpm=3450 temp=87 state=OK frame id=0x1A2 dlc=8 data=00FF341200AA90E1 gps lat=49.44 lon=7.75 alt=236")

	p := lzss.HWSpeedParams()
	p.Window = 32768
	z, err := ZlibCompressDict(data, dict, p)
	if err != nil {
		t.Fatal(err)
	}
	// Stdlib must decode it given the same dictionary.
	zr, err := zlibNewReaderDict(bytes.NewReader(z), dict)
	if err != nil {
		t.Fatalf("stdlib rejected FDICT stream: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("stdlib dict round trip failed: %v", err)
	}
	// Our decoder too.
	own, err := ZlibDecompressDict(z, dict)
	if err != nil || !bytes.Equal(own, data) {
		t.Fatalf("own dict round trip failed: %v", err)
	}
	// Wrong dictionary must be rejected by DICTID.
	if _, err := ZlibDecompressDict(z, []byte("wrong")); err == nil {
		t.Fatal("wrong dictionary accepted")
	}
}

func TestZlibDictWeDecodeStdlib(t *testing.T) {
	dict := bytes.Repeat([]byte("shared prefix material "), 20)
	data := append(append([]byte{}, dict[:100]...), []byte(" plus novel content 12345")...)
	var buf bytes.Buffer
	zw, err := zlibNewWriterDict(&buf, dict)
	if err != nil {
		t.Fatal(err)
	}
	zw.Write(data)
	zw.Close()
	out, err := ZlibDecompressDict(buf.Bytes(), dict)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("decode of stdlib FDICT stream failed: %v", err)
	}
}

func TestDictImprovesShortBlockRatio(t *testing.T) {
	// The point of preset dictionaries: short blocks full of known
	// boilerplate compress far better.
	dict := bytes.Repeat([]byte("timestamp= level=INFO module=can msg="), 10)
	data := []byte("timestamp=103456 level=INFO module=can msg=frame received")
	p := lzss.HWSpeedParams()
	plain, err := ZlibCompress(mustCmds(t, data, p), data, p.Window)
	if err != nil {
		t.Fatal(err)
	}
	withDict, err := ZlibCompressDict(data, dict, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(withDict) >= len(plain) {
		t.Fatalf("dictionary did not help: %d vs %d bytes", len(withDict), len(plain))
	}
}

func mustCmds(t *testing.T, data []byte, p lzss.Params) []token.Command {
	t.Helper()
	cmds, _, err := lzss.Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	return cmds
}
