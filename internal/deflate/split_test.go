package deflate

import (
	"bytes"
	"compress/flate"
	"io"
	"testing"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/workload"
)

func TestSplitDeflateRoundTrip(t *testing.T) {
	for _, corpus := range []string{"wiki", "mixed", "random", "zeros"} {
		gen, err := workload.ByName(corpus)
		if err != nil {
			t.Fatal(err)
		}
		data := gen(300_000, 120)
		cmds, _, err := lzss.Compress(data, lzss.HWSpeedParams())
		if err != nil {
			t.Fatal(err)
		}
		body, err := SplitDeflate(cmds)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Inflate(body)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("%s: own inflater: %v", corpus, err)
		}
		r := flate.NewReader(bytes.NewReader(body))
		sout, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(sout, data) {
			t.Fatalf("%s: stdlib: %v", corpus, err)
		}
	}
}

func TestSplitBeatsSingleTableOnMixedData(t *testing.T) {
	data := workload.Mixed(1<<20, 121)
	cmds, _, err := lzss.Compress(data, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	single, err := DynamicDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) >= len(single) {
		t.Fatalf("split %d not smaller than single-table %d on mixed data", len(split), len(single))
	}
}

func TestSplitConvergesOnHomogeneousData(t *testing.T) {
	// Uniform statistics: merging should collapse to few blocks and the
	// result must not be meaningfully worse than one dynamic block.
	data := workload.Wiki(1<<20, 122)
	cmds, _, err := lzss.Compress(data, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	single, err := DynamicDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitDeflate(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(split)) > 1.01*float64(len(single)) {
		t.Fatalf("split %d more than 1%% worse than single %d on homogeneous data", len(split), len(single))
	}
}

func TestSplitEmptyAndTiny(t *testing.T) {
	for _, data := range [][]byte{{}, {1}, []byte("tiny input")} {
		cmds, _, err := lzss.Compress(data, lzss.HWSpeedParams())
		if err != nil {
			t.Fatal(err)
		}
		body, err := SplitDeflate(cmds)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Inflate(body)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("%q: %v", data, err)
		}
	}
}

func TestZlibCompressSplitContainer(t *testing.T) {
	data := workload.Mixed(200_000, 123)
	cmds, _, err := lzss.Compress(data, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	z, err := ZlibCompressSplit(cmds, data, 4096)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ZlibDecompress(z)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("container round trip: %v", err)
	}
}
