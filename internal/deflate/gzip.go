package deflate

import (
	"encoding/binary"
	"fmt"

	"lzssfpga/internal/checksum"
	"lzssfpga/internal/lzss"
	"lzssfpga/internal/token"
)

// GZip container (RFC 1952) around the same Deflate bodies — the format
// the related-work "gzip compression core" [12] produces. The hardware
// only needs a different header/trailer wrapper around the identical
// LZSS + Huffman datapath.

const (
	gzipID1 = 0x1F
	gzipID2 = 0x8B
	gzipCM  = 8 // deflate
	// FNAME is the only optional field we emit or parse.
	gzipFNAME = 0x08
	// OS code 255 = unknown (we are a hardware stream, not a filesystem).
	gzipOSUnknown = 255
)

// GzipWrap builds a complete RFC 1952 stream around a raw Deflate body.
// name, if non-empty, is stored as the original file name (Latin-1,
// NUL-terminated). src is the original data (for CRC32 and ISIZE).
func GzipWrap(deflateBody, src []byte, name string) ([]byte, error) {
	for i := 0; i < len(name); i++ {
		if name[i] == 0 {
			return nil, fmt.Errorf("deflate: gzip name contains NUL")
		}
	}
	out := make([]byte, 0, len(deflateBody)+len(name)+20)
	flg := byte(0)
	if name != "" {
		flg |= gzipFNAME
	}
	out = append(out, gzipID1, gzipID2, gzipCM, flg,
		0, 0, 0, 0, // MTIME: none (deterministic output)
		0,             // XFL
		gzipOSUnknown) // OS
	if name != "" {
		out = append(out, name...)
		out = append(out, 0)
	}
	out = append(out, deflateBody...)
	var tr [8]byte
	binary.LittleEndian.PutUint32(tr[0:], checksum.CRC32(src))
	binary.LittleEndian.PutUint32(tr[4:], uint32(len(src)))
	return append(out, tr[:]...), nil
}

// GzipCompress is the end-to-end gzip path: LZSS with parameters p,
// best-of block selection, RFC 1952 container.
func GzipCompress(data []byte, p lzss.Params, name string) ([]byte, error) {
	cmds, _, err := lzss.Compress(data, p)
	if err != nil {
		return nil, err
	}
	body, err := BestDeflate(cmds, data)
	if err != nil {
		return nil, err
	}
	return GzipWrap(body, data, name)
}

// GzipDecompress parses an RFC 1952 stream, inflates the body and
// verifies CRC32 and ISIZE. It returns the data and the stored name
// (empty if none).
func GzipDecompress(data []byte) ([]byte, string, error) {
	if len(data) < 18 {
		return nil, "", fmt.Errorf("%w: gzip stream too short", ErrCorrupt)
	}
	if data[0] != gzipID1 || data[1] != gzipID2 {
		return nil, "", fmt.Errorf("%w: gzip magic", ErrCorrupt)
	}
	if data[2] != gzipCM {
		return nil, "", fmt.Errorf("%w: gzip method %d", ErrCorrupt, data[2])
	}
	flg := data[3]
	pos := 10
	if flg&0x04 != 0 { // FEXTRA
		if pos+2 > len(data) {
			return nil, "", fmt.Errorf("%w: truncated FEXTRA", ErrCorrupt)
		}
		xlen := int(binary.LittleEndian.Uint16(data[pos:]))
		pos += 2 + xlen
	}
	name := ""
	if flg&gzipFNAME != 0 {
		end := pos
		for end < len(data) && data[end] != 0 {
			end++
		}
		if end >= len(data) {
			return nil, "", fmt.Errorf("%w: unterminated FNAME", ErrCorrupt)
		}
		name = string(data[pos:end])
		pos = end + 1
	}
	if flg&0x10 != 0 { // FCOMMENT
		for pos < len(data) && data[pos] != 0 {
			pos++
		}
		if pos >= len(data) {
			return nil, "", fmt.Errorf("%w: unterminated FCOMMENT", ErrCorrupt)
		}
		pos++
	}
	if flg&0x02 != 0 { // FHCRC
		pos += 2
	}
	if pos+8 > len(data) {
		return nil, "", fmt.Errorf("%w: gzip header overruns stream", ErrCorrupt)
	}
	body := data[pos : len(data)-8]
	out, err := Inflate(body)
	if err != nil {
		return nil, "", err
	}
	tr := data[len(data)-8:]
	if got, want := checksum.CRC32(out), binary.LittleEndian.Uint32(tr[0:]); got != want {
		return nil, "", fmt.Errorf("%w: gzip crc32 %08x != %08x", ErrCorrupt, got, want)
	}
	if got, want := uint32(len(out)), binary.LittleEndian.Uint32(tr[4:]); got != want {
		return nil, "", fmt.Errorf("%w: gzip isize %d != %d", ErrCorrupt, got, want)
	}
	return out, name, nil
}

// GzipCommands exposes the body's command stream (for the hardware
// decompressor model).
func GzipCommands(data []byte) ([]token.Command, error) {
	out, _, err := GzipDecompress(data)
	if err != nil {
		return nil, err
	}
	_ = out
	// Re-locate the body: simplest correct approach is to re-parse the
	// header the same way.
	flg := data[3]
	pos := 10
	if flg&0x04 != 0 {
		pos += 2 + int(binary.LittleEndian.Uint16(data[pos:]))
	}
	if flg&gzipFNAME != 0 {
		for data[pos] != 0 {
			pos++
		}
		pos++
	}
	if flg&0x10 != 0 {
		for data[pos] != 0 {
			pos++
		}
		pos++
	}
	if flg&0x02 != 0 {
		pos += 2
	}
	return ParseCommands(data[pos : len(data)-8])
}
