package deflate

import (
	"bytes"
	"math/rand"
	"testing"

	"lzssfpga/internal/bitio"
	"lzssfpga/internal/token"
)

// randCommands builds a command stream with long literal runs (the
// shape match-skip produces on incompressible input) interleaved with
// matches, covering both 8- and 9-bit literal codes and the batch
// buffer boundary inside EncodeAll.
func randCommands(rng *rand.Rand, n int) []token.Command {
	var cmds []token.Command
	for len(cmds) < n {
		if rng.Intn(4) == 0 {
			cmds = append(cmds, token.Copy(1+rng.Intn(4095), 3+rng.Intn(256)))
			continue
		}
		run := 1 + rng.Intn(1500) // crosses the 512-byte batch buffer
		for i := 0; i < run; i++ {
			cmds = append(cmds, token.Lit(byte(rng.Intn(256))))
		}
	}
	return cmds
}

// TestEncodeAllMatchesEncode pins the batched literal path to the
// per-command encoder bit for bit.
func TestEncodeAllMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		cmds := randCommands(rng, 2000)

		var one bytes.Buffer
		bw1 := bitio.NewWriter(&one)
		e1 := NewEncoder(bw1)
		e1.BeginBlock(true)
		for _, c := range cmds {
			if err := e1.Encode(c); err != nil {
				t.Fatal(err)
			}
		}
		e1.EndBlock()
		if err := bw1.Flush(); err != nil {
			t.Fatal(err)
		}

		var all bytes.Buffer
		bw2 := bitio.NewWriter(&all)
		e2 := NewEncoder(bw2)
		e2.BeginBlock(true)
		if err := e2.EncodeAll(cmds); err != nil {
			t.Fatal(err)
		}
		e2.EndBlock()
		if err := bw2.Flush(); err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(one.Bytes(), all.Bytes()) {
			t.Fatalf("trial %d: EncodeAll stream differs from per-command encode", trial)
		}
		if bw1.BitsWritten() != bw2.BitsWritten() {
			t.Fatalf("trial %d: bit counts differ: %d vs %d", trial, bw1.BitsWritten(), bw2.BitsWritten())
		}
	}
}

// TestEncodeAllRejectsBadCommand checks error propagation from the
// non-literal path.
func TestEncodeAllRejectsBadCommand(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(bitio.NewWriter(&buf))
	bad := []token.Command{token.Lit('a'), token.Copy(0, 3)}
	if err := e.EncodeAll(bad); err == nil {
		t.Fatal("EncodeAll accepted an invalid match command")
	}
}
