package deflate

import (
	"bytes"
	"compress/zlib"
	"io"

	"lzssfpga/internal/bitio"
)

func newBitWriter(buf *bytes.Buffer) *bitio.Writer { return bitio.NewWriter(buf) }

func zlibNewReaderDict(r io.Reader, dict []byte) (io.ReadCloser, error) {
	return zlib.NewReaderDict(r, dict)
}

func zlibNewWriterDict(w io.Writer, dict []byte) (*zlib.Writer, error) {
	return zlib.NewWriterLevelDict(w, zlib.BestSpeed, dict)
}
