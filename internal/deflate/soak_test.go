package deflate

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"lzssfpga/internal/engine"
	"lzssfpga/internal/faultinject"
	"lzssfpga/internal/lzss"
	"lzssfpga/internal/workload"
)

// serialReference builds the expected stream for one (data, params,
// segment, carry) tuple without the engine: the same segment encoder,
// driven sequentially on this goroutine. The engine path must be
// byte-exact against it for any concurrency.
func serialReference(t *testing.T, data []byte, p lzss.Params, segment int, carry bool) []byte {
	t.Helper()
	plan := planSegments(len(data), segment)
	hdr, err := ZlibHeader(p.Window)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), hdr[:]...)
	for i := 0; i < plan.nSeg; i++ {
		lo := i * plan.segment
		hi := lo + plan.segment
		if hi > len(data) {
			hi = len(data)
		}
		dl := dictLow(lo, carry, p)
		sw, err := getSegWorker(p)
		if err != nil {
			t.Fatal(err)
		}
		body, err := sw.compressSegment(data[dl:hi], lo-dl, i == plan.nSeg-1, segHint(hi-lo))
		putSegWorker(sw)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, body.B...)
		engine.PutBuf(body)
	}
	sum := AdlerChecksum(data)
	return append(out, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
}

// TestEngineSoak hammers the shared engine from many goroutines with
// mixed sizes, parameters, segment cuts and modes, requiring every
// result to be byte-exact against an engine-free serial reference —
// and the engine to leave no goroutines behind once closed.
func TestEngineSoak(t *testing.T) {
	ResetDefaultEngine()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	type soakCase struct {
		data    []byte
		p       lzss.Params
		segment int
		carry   bool
		want    []byte
	}
	sizes := []int{0, 1, 7 << 10, 100 << 10, 777_777, 2 << 20}
	params := []lzss.Params{lzss.HWSpeedParams(), lzss.LevelParams(lzss.LevelDefault, 32<<10, 15)}
	segments := []int{16 << 10, 64 << 10, 256 << 10}
	var cases []soakCase
	for si, n := range sizes {
		p := params[si%len(params)]
		seg := segments[si%len(segments)]
		data := workload.Wiki(n, int64(1000+n))
		for _, carry := range []bool{false, true} {
			cases = append(cases, soakCase{
				data: data, p: p, segment: seg, carry: carry,
				want: serialReference(t, data, p, seg, carry),
			})
		}
	}

	const goroutines = 8
	iters := 6
	if testing.Short() {
		iters = 2
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				c := cases[(g+it)%len(cases)]
				workers := 1 + (g+it)%5
				var got []byte
				var err error
				if c.carry {
					got, err = ParallelCompressDict(c.data, c.p, c.segment, workers)
				} else {
					got, err = ParallelCompress(c.data, c.p, c.segment, workers)
				}
				if err != nil {
					errc <- fmt.Errorf("g%d it%d: %v", g, it, err)
					return
				}
				if !bytes.Equal(got, c.want) {
					errc <- fmt.Errorf("g%d it%d: engine output diverged from serial reference (n=%d seg=%d carry=%v workers=%d)",
						g, it, len(c.data), c.segment, c.carry, workers)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The engine must shut down without leaking its workers.
	ResetDefaultEngine()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after engine close: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReorderUnderWorkerStalls is the streaming reorder buffer's
// adversarial ordering test: injected worker stalls (with no attempt
// deadline, so a stall is pure delay) force segments to complete far
// out of order, and the assembled stream must still be byte-identical
// to the undelayed fast path.
func TestReorderUnderWorkerStalls(t *testing.T) {
	data := workload.Wiki(512<<10, 99)
	p := lzss.HWSpeedParams()
	want, err := ParallelCompress(data, p, 16<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		inj := faultinject.New(faultinject.Spec{WorkerStall: 0.4, StallMS: 20, Seed: seed})
		got, rep, err := ParallelCompressResilient(context.Background(), data, p, ParallelOpts{
			Segment: 16 << 10, SegmentHook: inj.SegmentHook,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Degraded != 0 || rep.Retries != 0 {
			t.Fatalf("seed %d: pure delays must not trigger recovery: %+v", seed, rep)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: stalled segments were reassembled out of order", seed)
		}
		if s := inj.Stats(); s.StallsInjected == 0 {
			t.Fatalf("seed %d: no stalls injected — test exercised nothing", seed)
		}
	}
}
