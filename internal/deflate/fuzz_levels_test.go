package deflate

import (
	"bytes"
	"compress/zlib"
	"io"
	"testing"

	"lzssfpga/internal/lzss"
)

// fuzzLevels spans every matcher family and parse policy behind the
// level dial: generation-two greedy (1, 3), chain-lazy (6, 9), and the
// suffix-array optimal-parse tier (10, 12).
var fuzzLevels = []lzss.Level{1, 3, 6, 9, 10, 12}

// FuzzRoundTripAllLevels is the cross-matcher differential oracle:
// whatever the input, every compression level must produce a stream
// that BOTH Go's compress/zlib and the hardened ZlibDecompressLimited
// decode back to the exact input bytes. Committed seeds cover the
// degenerate shapes that stress matchers differently (zeros,
// period-1/3/8 repeats, random, a wiki slice); see
// testdata/fuzz/FuzzRoundTripAllLevels.
func FuzzRoundTripAllLevels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("abcabcabcabcabcabc"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<17 {
			data = data[:1<<17]
		}
		for _, lvl := range fuzzLevels {
			p := lzss.LevelParams(lvl, 32768, 15)
			cmds, _, err := lzss.Compress(data, p)
			if err != nil {
				t.Fatalf("level %d: compress: %v", lvl, err)
			}
			z, err := ZlibCompress(cmds, data, p.Window)
			if err != nil {
				t.Fatalf("level %d: encode: %v", lvl, err)
			}
			// Oracle 1: the Go standard library.
			zr, err := zlib.NewReader(bytes.NewReader(z))
			if err != nil {
				t.Fatalf("level %d: stdlib reader: %v", lvl, err)
			}
			out, err := io.ReadAll(zr)
			zr.Close()
			if err != nil {
				t.Fatalf("level %d: stdlib decode: %v", lvl, err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("level %d: stdlib decode mismatch (%d bytes in, %d out)", lvl, len(data), len(out))
			}
			// Oracle 2: the hardened limited inflater.
			lim := DecodeLimits{MaxOutputBytes: len(data) + 64, MaxBlocks: 1 << 16}
			hout, err := ZlibDecompressLimited(z, lim)
			if err != nil {
				t.Fatalf("level %d: hardened decode: %v", lvl, err)
			}
			if !bytes.Equal(hout, data) {
				t.Fatalf("level %d: hardened decode mismatch", lvl)
			}
		}
	})
}
