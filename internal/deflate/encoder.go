package deflate

import (
	"bytes"
	"fmt"
	"math/bits"

	"lzssfpga/internal/bitio"
	"lzssfpga/internal/lzss"
	"lzssfpga/internal/token"
)

// Encoder turns LZSS command streams into Deflate bit streams. It
// mirrors the paper's pipelined fixed-table Huffman stage: because the
// table is fixed, encoding is a pure per-command lookup and the stage
// never stalls the LZSS FSM. The code tables are shared package
// singletons stored pre-reversed, so construction is allocation-free
// and emission needs no per-symbol bit reversal.
type Encoder struct {
	bw       *bitio.Writer
	litCodes []uint16 // bit-reversed fixed codes
	litLens  []uint8
	dstCodes []uint16 // bit-reversed fixed codes
	dstLens  []uint8
}

// NewEncoder returns an encoder emitting to bw using the fixed tables.
func NewEncoder(bw *bitio.Writer) *Encoder {
	return &Encoder{
		bw:       bw,
		litCodes: fixedLitCodesRev,
		litLens:  fixedLitLens,
		dstCodes: fixedDistCodesRev,
		dstLens:  fixedDistLens,
	}
}

// Reset retargets the encoder at bw, for pooled reuse.
func (e *Encoder) Reset(bw *bitio.Writer) { e.bw = bw }

// BeginBlock writes the block header. final marks BFINAL; the block
// type is always fixed-Huffman (BTYPE=01).
func (e *Encoder) BeginBlock(final bool) {
	e.bw.WriteBool(final)
	e.bw.WriteBits(0b01, 2)
}

// Encode writes one LZSS command as Huffman symbols.
func (e *Encoder) Encode(c token.Command) error {
	switch c.K {
	case token.Literal:
		e.putSym(int(c.Lit))
		return nil
	case token.Match:
		if err := c.Validate(); err != nil {
			return err
		}
		lc := lenCodeFor(c.Length)
		e.putSym(int(lc.sym))
		if lc.extra > 0 {
			e.bw.WriteBits(uint32(c.Length)-uint32(lc.base), uint(lc.extra))
		}
		dc := distCodeFor(c.Distance)
		e.bw.WriteBits(uint32(e.dstCodes[dc.sym]), uint(e.dstLens[dc.sym]))
		if dc.extra > 0 {
			e.bw.WriteBits(uint32(c.Distance)-uint32(dc.base), uint(dc.extra))
		}
		return nil
	default:
		return fmt.Errorf("deflate: unknown command kind %d", c.K)
	}
}

// EncodeAll encodes a command slice, batching runs of consecutive
// literals through the bit writer's coded fast path (bitio.WriteCoded).
// Output is bit-identical to calling Encode per command; the batching
// only removes per-symbol call and accumulator-bookkeeping overhead,
// which dominates on literal-heavy (incompressible) streams.
func (e *Encoder) EncodeAll(cmds []token.Command) error {
	var lits [512]byte
	i := 0
	for i < len(cmds) {
		if cmds[i].K == token.Literal {
			n := 0
			for i < len(cmds) && cmds[i].K == token.Literal {
				lits[n] = cmds[i].Lit
				n++
				i++
				if n == len(lits) {
					e.bw.WriteCoded(lits[:n], e.litCodes, e.litLens)
					n = 0
				}
			}
			if n > 0 {
				e.bw.WriteCoded(lits[:n], e.litCodes, e.litLens)
			}
			continue
		}
		if err := e.Encode(cmds[i]); err != nil {
			return err
		}
		i++
	}
	return nil
}

// EndBlock writes the end-of-block symbol (256).
func (e *Encoder) EndBlock() { e.putSym(endOfBlock) }

func (e *Encoder) putSym(sym int) {
	e.bw.WriteBits(uint32(e.litCodes[sym]), uint(e.litLens[sym]))
}

// CommandBits returns the encoded size of c in bits under the fixed
// tables — the cost model the estimator uses for output-size figures.
func CommandBits(c token.Command) int {
	if c.K == token.Literal {
		if c.Lit < 144 {
			return 8
		}
		return 9
	}
	lc := lenCodeFor(c.Length)
	dc := distCodeFor(c.Distance)
	n := int(fixedLitLens[lc.sym]) // 7 or 8
	return n + int(lc.extra) + 5 + int(dc.extra)
}

// FixedDeflate encodes cmds as a single final fixed-Huffman block and
// returns the raw Deflate stream.
func FixedDeflate(cmds []token.Command) ([]byte, error) {
	var buf bytes.Buffer
	// Size hint: literals cost at most 9 bits plus slack for match extra
	// bits; a short estimate only costs a growth copy, never correctness.
	buf.Grow(len(cmds)*2 + 64)
	bw := bitio.NewWriter(&buf)
	e := NewEncoder(bw)
	e.BeginBlock(true)
	if err := e.EncodeAll(cmds); err != nil {
		return nil, err
	}
	e.EndBlock()
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// StoredDeflate encodes src as stored (uncompressed) blocks — the
// fallback for incompressible data. Each stored block holds at most
// 65535 bytes.
func StoredDeflate(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	rest := src
	for {
		chunk := rest
		if len(chunk) > 65535 {
			chunk = chunk[:65535]
		}
		rest = rest[len(chunk):]
		final := len(rest) == 0
		bw.WriteBool(final)
		bw.WriteBits(0b00, 2)
		bw.AlignByte()
		n := uint32(len(chunk))
		bw.WriteBits(n, 16)
		bw.WriteBits(^n&0xFFFF, 16)
		bw.WriteBytes(chunk)
		if final {
			break
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ZlibHeader returns the two-byte RFC 1950 header for the given window
// size (power of two, 256..32768).
func ZlibHeader(window int) ([2]byte, error) {
	if window < 256 || window > 32768 || window&(window-1) != 0 {
		return [2]byte{}, fmt.Errorf("deflate: zlib window %d must be a power of two in [256,32768]", window)
	}
	cinfo := uint(bits.TrailingZeros(uint(window))) - 8
	cmf := byte(cinfo<<4 | 8) // CM=8 (deflate)
	flg := byte(0)            // FLEVEL=0 (fastest), FDICT=0
	rem := (uint32(cmf)*256 + uint32(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	return [2]byte{cmf, flg}, nil
}

// ZlibWrap builds a complete RFC 1950 stream around a raw Deflate body.
// src is the original (uncompressed) data, needed for the Adler-32
// trailer.
func ZlibWrap(deflateBody, src []byte, window int) ([]byte, error) {
	hdr, err := ZlibHeader(window)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(deflateBody)+6)
	out = append(out, hdr[0], hdr[1])
	out = append(out, deflateBody...)
	sum := AdlerChecksum(src)
	out = append(out, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	return out, nil
}

// ZlibCompress is the end-to-end path the hardware implements: an LZSS
// command stream Huffman-coded with the fixed table inside a ZLib
// container. src must be the bytes cmds expand to.
func ZlibCompress(cmds []token.Command, src []byte, window int) ([]byte, error) {
	// Encode header, body and trailer into one pre-grown buffer rather
	// than building the body separately and copying it through ZlibWrap.
	hdr, err := ZlibHeader(window)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(cmds)*2 + 64)
	buf.Write(hdr[:])
	bw := bitio.NewWriter(&buf)
	e := NewEncoder(bw)
	e.BeginBlock(true)
	if err := e.EncodeAll(cmds); err != nil {
		return nil, err
	}
	e.EndBlock()
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	sum := AdlerChecksum(src)
	buf.Write([]byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	return buf.Bytes(), nil
}

// zlibDictHeader returns the six-byte FDICT variant of the RFC 1950
// header (§2.2): CMF as usual, FLG with FDICT set and FCHECK
// recomputed, then the four-byte DICTID. Shared by the serial and
// parallel preset-dictionary encoders so the two emit byte-identical
// containers.
func zlibDictHeader(window int, dictID uint32) ([6]byte, error) {
	hdr, err := ZlibHeader(window)
	if err != nil {
		return [6]byte{}, err
	}
	cmf, flg := hdr[0], hdr[1]|0x20 // set FDICT
	// Recompute FCHECK for the new FLG.
	flg &^= 0x1F
	if rem := (uint32(cmf)*256 + uint32(flg)) % 31; rem != 0 {
		flg += byte(31 - rem)
	}
	return [6]byte{cmf, flg,
		byte(dictID >> 24), byte(dictID >> 16), byte(dictID >> 8), byte(dictID)}, nil
}

// ZlibCompressDict is ZlibCompress with a preset dictionary: the header
// carries the FDICT flag and the dictionary's Adler-32 as DICTID
// (RFC 1950 §2.2), so any zlib implementation given the same dictionary
// can decode the stream.
func ZlibCompressDict(data, dict []byte, p lzss.Params) ([]byte, error) {
	cmds, _, err := lzss.CompressWithDict(dict, data, p)
	if err != nil {
		return nil, err
	}
	body, err := FixedDeflate(cmds)
	if err != nil {
		return nil, err
	}
	hdr, err := zlibDictHeader(p.Window, AdlerChecksum(dict))
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(body)+10)
	out = append(out, hdr[:]...)
	out = append(out, body...)
	sum := AdlerChecksum(data)
	return append(out, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum)), nil
}

// ZlibDecompressDict decodes a preset-dictionary zlib stream, verifying
// DICTID against the supplied dictionary.
func ZlibDecompressDict(data, dict []byte) ([]byte, error) {
	if len(data) < 10 {
		return nil, fmt.Errorf("%w: dictionary zlib stream too short", ErrCorrupt)
	}
	cmf, flg := data[0], data[1]
	if cmf&0x0F != 8 || (uint32(cmf)*256+uint32(flg))%31 != 0 {
		return nil, fmt.Errorf("%w: zlib header", ErrCorrupt)
	}
	if flg&0x20 == 0 {
		return nil, fmt.Errorf("%w: stream has no preset dictionary", ErrCorrupt)
	}
	dictID := uint32(data[2])<<24 | uint32(data[3])<<16 | uint32(data[4])<<8 | uint32(data[5])
	if got := AdlerChecksum(dict); got != dictID {
		return nil, fmt.Errorf("%w: DICTID %08x does not match dictionary %08x", ErrCorrupt, dictID, got)
	}
	body := data[6 : len(data)-4]
	hist := dict
	if len(hist) > 32768 {
		hist = hist[len(hist)-32768:]
	}
	cmds, err := ParseCommandsWithHistory(body, len(hist))
	if err != nil {
		return nil, err
	}
	out, err := token.ExpandWithHistory(hist, cmds)
	if err != nil {
		return nil, err
	}
	tr := data[len(data)-4:]
	want := uint32(tr[0])<<24 | uint32(tr[1])<<16 | uint32(tr[2])<<8 | uint32(tr[3])
	if got := AdlerChecksum(out); got != want {
		return nil, fmt.Errorf("%w: adler32 %08x != %08x", ErrCorrupt, got, want)
	}
	return out, nil
}
