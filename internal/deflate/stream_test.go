package deflate

import (
	"bytes"
	"compress/zlib"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/workload"
)

func streamCompress(t *testing.T, data []byte, p lzss.Params, chunk int) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i += chunk {
		end := i + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := zw.Write(data[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriterStdlibInterop(t *testing.T) {
	data := workload.Wiki(500_000, 5)
	z := streamCompress(t, data, lzss.HWSpeedParams(), 12345)
	zr, err := zlib.NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatalf("stdlib rejected streaming output: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("stdlib round trip failed: %v", err)
	}
}

func TestWriterEmptyStream(t *testing.T) {
	z := streamCompress(t, nil, lzss.HWSpeedParams(), 1)
	out, err := ZlibDecompress(z)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty stream round trip failed: %v (%d bytes)", err, len(out))
	}
	zr, err := zlib.NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := io.ReadAll(zr); len(out) != 0 {
		t.Fatal("stdlib decoded nonempty")
	}
}

func TestWriterMultiBlock(t *testing.T) {
	// Enough commands for several blocks (blockCommands boundary).
	rng := rand.New(rand.NewSource(20))
	data := make([]byte, 500_000)
	rng.Read(data) // random → ~1 command per byte → >15 blocks
	z := streamCompress(t, data, lzss.HWSpeedParams(), 100_000)
	out, err := ZlibDecompress(z)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("multi-block round trip failed: %v", err)
	}
}

func TestWriterPicksDynamicWhenSmaller(t *testing.T) {
	// Skewed 9-bit-literal data: the streaming writer's dynamic choice
	// must beat a pure fixed encoding.
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, 200_000)
	for i := range data {
		data[i] = 200 + byte(rng.Intn(4))
	}
	z := streamCompress(t, data, lzss.HWSpeedParams(), 65536)
	cmds, _, err := lzss.Compress(data, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := ZlibCompress(cmds, data, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(fixed) {
		t.Fatalf("streaming (%d) not better than fixed (%d) on skewed data", len(z), len(fixed))
	}
}

func TestWriterAfterClose(t *testing.T) {
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	zw.Write([]byte("x"))
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write([]byte("y")); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := zw.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

// failingWriter accepts n bytes then errors.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	if f.n == 0 {
		return len(p), io.ErrClosedPipe
	}
	return len(p), nil
}

func TestWriterPropagatesSinkError(t *testing.T) {
	zw, err := NewWriter(&failingWriter{n: 4}, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	data := workload.Wiki(300_000, 6)
	zw.Write(data)
	if err := zw.Close(); err == nil {
		t.Fatal("sink error swallowed")
	}
}

// --- streaming reader ---

func TestReaderDecodesOwnWriter(t *testing.T) {
	data := workload.CAN(300_000, 9)
	z := streamCompress(t, data, lzss.HWSpeedParams(), 7777)
	zr, err := NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("streaming reader mismatch")
	}
}

func TestReaderDecodesStdlib(t *testing.T) {
	data := workload.Wiki(200_000, 10)
	for _, level := range []int{0, 1, 9} {
		var buf bytes.Buffer
		w, err := zlib.NewWriterLevel(&buf, level)
		if err != nil {
			t.Fatal(err)
		}
		w.Write(data)
		w.Close()
		zr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		out, err := io.ReadAll(zr)
		if err != nil && err != io.EOF {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("level %d: mismatch", level)
		}
	}
}

func TestReaderSmallReads(t *testing.T) {
	// Matches crossing Read boundaries exercise the in-flight-copy path.
	data := bytes.Repeat([]byte("abcdefgh"), 5000)
	z := streamCompress(t, data, lzss.HWSpeedParams(), len(data))
	zr, err := NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	buf := make([]byte, 3)
	for {
		n, err := zr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out, data) {
		t.Fatal("small-read mismatch")
	}
}

func TestReaderDetectsCorruptTrailer(t *testing.T) {
	data := []byte("checksum this")
	z := streamCompress(t, data, lzss.HWSpeedParams(), 4)
	z[len(z)-1] ^= 0xFF
	zr, err := NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(zr); err == nil {
		t.Fatal("corrupt adler not detected")
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{0x79, 0x01, 0, 0})); err == nil {
		t.Fatal("bad FCHECK accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{0x7F, 0x01, 0, 0})); err == nil {
		t.Fatal("bad method accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestQuickStreamPipeline(t *testing.T) {
	p := lzss.Params{Window: 1024, HashBits: 10, MaxChain: 8, Nice: 32, InsertLimit: 8}
	f := func(data []byte, chunkSel uint8, mod uint8) bool {
		m := int(mod%6) + 2
		for i := range data {
			data[i] = byte(int(data[i]) % m)
		}
		chunk := int(chunkSel)%63 + 1
		var buf bytes.Buffer
		zw, err := NewWriter(&buf, p)
		if err != nil {
			return false
		}
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := zw.Write(data[i:end]); err != nil {
				return false
			}
		}
		if zw.Close() != nil {
			return false
		}
		// Decode through the streaming reader AND stdlib.
		zr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		out, err := io.ReadAll(zr)
		if (err != nil && err != io.EOF) || !bytes.Equal(out, data) {
			return false
		}
		sr, err := zlib.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		sout, err := io.ReadAll(sr)
		return err == nil && bytes.Equal(sout, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStreamingWriter(b *testing.B) {
	data := []byte(strings.Repeat("streaming writer benchmark data ", 2048))[:65536]
	p := lzss.HWSpeedParams()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		zw, err := NewWriter(io.Discard, p)
		if err != nil {
			b.Fatal(err)
		}
		zw.Write(data)
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamingReader(b *testing.B) {
	data := []byte(strings.Repeat("streaming reader benchmark data ", 2048))[:65536]
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, lzss.HWSpeedParams())
	if err != nil {
		b.Fatal(err)
	}
	zw.Write(data)
	zw.Close()
	z := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	out := make([]byte, 8192)
	for i := 0; i < b.N; i++ {
		zr, err := NewReader(bytes.NewReader(z))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := zr.Read(out)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestWriterSyncFlush(t *testing.T) {
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, lzss.HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	part1 := []byte("first installment of the stream; ")
	zw.Write(part1)
	if err := zw.Flush(); err != nil {
		t.Fatal(err)
	}
	// A reader over the flushed prefix must yield all of part1 even
	// though the stream is not closed (read exactly len(part1) bytes).
	zr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(part1))
	if _, err := io.ReadFull(zr, got); err != nil {
		t.Fatalf("read after flush: %v", err)
	}
	if !bytes.Equal(got, part1) {
		t.Fatalf("flushed prefix mismatch: %q", got)
	}
	// The stream continues and closes normally.
	part2 := []byte("second installment, after the flush")
	zw.Write(part2)
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	full := append(append([]byte{}, part1...), part2...)
	out, err := ZlibDecompress(buf.Bytes())
	if err != nil || !bytes.Equal(out, full) {
		t.Fatalf("full round trip after flush failed: %v", err)
	}
	// Stdlib agrees.
	sr, err := zlib.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sout, err := io.ReadAll(sr)
	if err != nil || !bytes.Equal(sout, full) {
		t.Fatalf("stdlib after flush failed: %v", err)
	}
}

func TestWriterFlushAfterCloseRejected(t *testing.T) {
	var buf bytes.Buffer
	zw, _ := NewWriter(&buf, lzss.HWSpeedParams())
	zw.Close()
	if err := zw.Flush(); err == nil {
		t.Fatal("flush after close accepted")
	}
}

func TestWriterRepeatedFlushes(t *testing.T) {
	var buf bytes.Buffer
	zw, _ := NewWriter(&buf, lzss.HWSpeedParams())
	var want []byte
	for i := 0; i < 20; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i%4)}, 100+i)
		zw.Write(chunk)
		want = append(want, chunk...)
		if err := zw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ZlibDecompress(buf.Bytes())
	if err != nil || !bytes.Equal(out, want) {
		t.Fatalf("repeated flushes broke the stream: %v", err)
	}
}
