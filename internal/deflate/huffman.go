package deflate

import (
	"container/heap"
	"sort"
)

// Length-limited Huffman code construction for the dynamic-Huffman
// encoder (the compression-ratio upgrade path the paper names in §IV:
// "the cost for the high performance is less efficient compression
// compared to the dynamic huffman coders").
//
// buildCodeLengths assigns optimal prefix-code lengths to the symbols
// with nonzero frequency, subject to maxLen, using the standard
// two-queue Huffman construction followed by zlib-style overflow
// adjustment when the tree exceeds the depth limit.

type huffNode struct {
	freq  int64
	depth int32 // tie-breaker: prefer shallow trees, like zlib
	sym   int32 // >= 0 for leaves, -1 for internal
	left  int32
	right int32
}

type huffHeap struct {
	nodes []huffNode
	order []int32
}

func (h *huffHeap) Len() int { return len(h.order) }
func (h *huffHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.depth < b.depth
}
func (h *huffHeap) Swap(i, j int)      { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *huffHeap) Push(x interface{}) { h.order = append(h.order, x.(int32)) }
func (h *huffHeap) Pop() interface{} {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// buildCodeLengths returns a length per symbol (0 for unused). At least
// one symbol must have freq > 0. If only one symbol is used it gets
// length 1 (Deflate requires complete-enough codes for the decoder; a
// single 1-bit code is what zlib emits too).
func buildCodeLengths(freqs []int64, maxLen int) []uint8 {
	lengths := make([]uint8, len(freqs))
	nodes := make([]huffNode, 0, 2*len(freqs))
	h := &huffHeap{nodes: nil}
	for sym, f := range freqs {
		if f > 0 {
			nodes = append(nodes, huffNode{freq: f, sym: int32(sym), left: -1, right: -1})
		}
	}
	switch len(nodes) {
	case 0:
		return lengths
	case 1:
		lengths[nodes[0].sym] = 1
		return lengths
	}
	h.nodes = nodes
	h.order = make([]int32, len(nodes))
	for i := range h.order {
		h.order[i] = int32(i)
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int32)
		b := heap.Pop(h).(int32)
		na, nb := h.nodes[a], h.nodes[b]
		depth := na.depth
		if nb.depth > depth {
			depth = nb.depth
		}
		h.nodes = append(h.nodes, huffNode{
			freq: na.freq + nb.freq, depth: depth + 1, sym: -1, left: a, right: b,
		})
		heap.Push(h, int32(len(h.nodes)-1))
	}
	root := h.order[0]
	assignDepths(h.nodes, root, 0, lengths)
	if over := maxDepth(lengths); over > maxLen {
		limitLengths(freqs, lengths, maxLen)
	}
	return lengths
}

func assignDepths(nodes []huffNode, idx int32, depth uint8, lengths []uint8) {
	n := nodes[idx]
	if n.sym >= 0 {
		lengths[n.sym] = depth
		return
	}
	assignDepths(nodes, n.left, depth+1, lengths)
	assignDepths(nodes, n.right, depth+1, lengths)
}

func maxDepth(lengths []uint8) int {
	m := 0
	for _, l := range lengths {
		if int(l) > m {
			m = int(l)
		}
	}
	return m
}

// limitLengths rebuilds an over-deep code as a valid length-limited
// one: clamp to maxLen, then restore the Kraft equality by deepening
// the least-frequent shallow leaves (the classic zlib bl_count repair),
// finally re-canonicalizing so lengths are monotone in frequency.
func limitLengths(freqs []int64, lengths []uint8, maxLen int) {
	type symFreq struct {
		sym  int
		freq int64
	}
	var used []symFreq
	for sym, l := range lengths {
		if l > 0 {
			used = append(used, symFreq{sym, freqs[sym]})
		}
	}
	// Sort by descending frequency: most frequent gets shortest code.
	sort.Slice(used, func(i, j int) bool {
		if used[i].freq != used[j].freq {
			return used[i].freq > used[j].freq
		}
		return used[i].sym < used[j].sym
	})
	// Start from the clamped histogram.
	blCount := make([]int, maxLen+1)
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxLen {
			l = uint8(maxLen)
		}
		blCount[l]++
	}
	// Repair the Kraft equality (zlib's bl_count overflow fix): while
	// oversubscribed, turn one leaf at the deepest non-max level into
	// an internal node whose children absorb it and one max-depth leaf.
	// Each step lowers the Kraft sum (scaled by 2^maxLen) by exactly 1,
	// so the loop terminates precisely at a complete code — clamping
	// can only oversubscribe, never undersubscribe.
	kraft := func() int64 {
		var k int64
		for l := 1; l <= maxLen; l++ {
			k += int64(blCount[l]) << uint(maxLen-l)
		}
		return k
	}
	full := int64(1) << uint(maxLen)
	for kraft() > full {
		bits := maxLen - 1
		for bits > 0 && blCount[bits] == 0 {
			bits--
		}
		blCount[bits]--
		blCount[bits+1] += 2
		blCount[maxLen]--
	}
	// Assign lengths: shortest codes to most frequent symbols.
	i := 0
	for l := 1; l <= maxLen; l++ {
		for n := 0; n < blCount[l]; n++ {
			lengths[used[i].sym] = uint8(l)
			i++
		}
	}
}
