package deflate

import (
	"sort"
)

// Length-limited Huffman code construction for the dynamic-Huffman
// encoder (the compression-ratio upgrade path the paper names in §IV:
// "the cost for the high performance is less efficient compression
// compared to the dynamic huffman coders").
//
// buildCodeLengths assigns optimal prefix-code lengths to the symbols
// with nonzero frequency, subject to maxLen, using the standard
// two-queue Huffman construction followed by zlib-style overflow
// adjustment when the tree exceeds the depth limit. The heavy lifting
// lives on codeBuilder, whose scratch slices are reusable across blocks
// so the pooled parallel pipeline plans without allocating.

type huffNode struct {
	freq  int64
	depth int32 // tie-breaker: prefer shallow trees, like zlib
	sym   int32 // >= 0 for leaves, -1 for internal
	left  int32
	right int32
}

type symFreq struct {
	sym  int
	freq int64
}

// codeBuilder holds the reusable scratch of the Huffman construction:
// the node arena, the priority-queue order slice and the length-limit
// repair buffers.
type codeBuilder struct {
	nodes   []huffNode
	order   []int32
	used    []symFreq
	blCount []int
}

// sort.Interface over cb.used (descending frequency, ascending symbol)
// for limitLengths; implemented on the builder so sort.Sort gets an
// already-boxed pointer and the sort allocates nothing.
func (cb *codeBuilder) Len() int { return len(cb.used) }
func (cb *codeBuilder) Less(i, j int) bool {
	if cb.used[i].freq != cb.used[j].freq {
		return cb.used[i].freq > cb.used[j].freq
	}
	return cb.used[i].sym < cb.used[j].sym
}
func (cb *codeBuilder) Swap(i, j int) { cb.used[i], cb.used[j] = cb.used[j], cb.used[i] }

func (cb *codeBuilder) less(a, b int32) bool {
	na, nb := &cb.nodes[a], &cb.nodes[b]
	if na.freq != nb.freq {
		return na.freq < nb.freq
	}
	return na.depth < nb.depth
}

// heap primitives over cb.order (a min-heap of node indices). Hand
// rolled instead of container/heap: the interface{} boxing of
// heap.Push/Pop allocates per node, which the pooled pipeline exists to
// avoid.
func (cb *codeBuilder) siftUp(i int) {
	o := cb.order
	for i > 0 {
		parent := (i - 1) / 2
		if !cb.less(o[i], o[parent]) {
			break
		}
		o[i], o[parent] = o[parent], o[i]
		i = parent
	}
}

func (cb *codeBuilder) siftDown(i int) {
	o := cb.order
	n := len(o)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && cb.less(o[r], o[l]) {
			small = r
		}
		if !cb.less(o[small], o[i]) {
			break
		}
		o[i], o[small] = o[small], o[i]
		i = small
	}
}

func (cb *codeBuilder) popMin() int32 {
	o := cb.order
	x := o[0]
	last := len(o) - 1
	o[0] = o[last]
	cb.order = o[:last]
	cb.siftDown(0)
	return x
}

func (cb *codeBuilder) push(x int32) {
	cb.order = append(cb.order, x)
	cb.siftUp(len(cb.order) - 1)
}

// build fills lengths (len(lengths) == len(freqs), caller-zeroed) with
// a length per symbol (0 for unused). At least one symbol must have
// freq > 0 for a usable code. If only one symbol is used it gets length
// 1 (Deflate requires complete-enough codes for the decoder; a single
// 1-bit code is what zlib emits too).
func (cb *codeBuilder) build(freqs []int64, lengths []uint8, maxLen int) {
	nodes := cb.nodes[:0]
	if cap(nodes) < 2*len(freqs) {
		nodes = make([]huffNode, 0, 2*len(freqs))
	}
	for sym, f := range freqs {
		if f > 0 {
			nodes = append(nodes, huffNode{freq: f, sym: int32(sym), left: -1, right: -1})
		}
	}
	cb.nodes = nodes
	switch len(nodes) {
	case 0:
		return
	case 1:
		lengths[nodes[0].sym] = 1
		return
	}
	order := cb.order[:0]
	if cap(order) < len(nodes) {
		order = make([]int32, 0, 2*len(freqs))
	}
	for i := range nodes {
		order = append(order, int32(i))
	}
	cb.order = order
	// Heapify (leaves were appended in symbol order, not freq order).
	for i := len(cb.order)/2 - 1; i >= 0; i-- {
		cb.siftDown(i)
	}
	for len(cb.order) > 1 {
		a := cb.popMin()
		b := cb.popMin()
		na, nb := cb.nodes[a], cb.nodes[b]
		depth := na.depth
		if nb.depth > depth {
			depth = nb.depth
		}
		cb.nodes = append(cb.nodes, huffNode{
			freq: na.freq + nb.freq, depth: depth + 1, sym: -1, left: a, right: b,
		})
		cb.push(int32(len(cb.nodes) - 1))
	}
	root := cb.order[0]
	assignDepths(cb.nodes, root, 0, lengths)
	if over := maxDepth(lengths); over > maxLen {
		cb.limitLengths(freqs, lengths, maxLen)
	}
}

// buildCodeLengths is the convenience form of codeBuilder.build with
// fresh scratch — tests and one-shot callers use it.
func buildCodeLengths(freqs []int64, maxLen int) []uint8 {
	lengths := make([]uint8, len(freqs))
	var cb codeBuilder
	cb.build(freqs, lengths, maxLen)
	return lengths
}

func assignDepths(nodes []huffNode, idx int32, depth uint8, lengths []uint8) {
	n := nodes[idx]
	if n.sym >= 0 {
		lengths[n.sym] = depth
		return
	}
	assignDepths(nodes, n.left, depth+1, lengths)
	assignDepths(nodes, n.right, depth+1, lengths)
}

func maxDepth(lengths []uint8) int {
	m := 0
	for _, l := range lengths {
		if int(l) > m {
			m = int(l)
		}
	}
	return m
}

// limitLengths rebuilds an over-deep code as a valid length-limited
// one: clamp to maxLen, then restore the Kraft equality by deepening
// the least-frequent shallow leaves (the classic zlib bl_count repair),
// finally re-canonicalizing so lengths are monotone in frequency.
func (cb *codeBuilder) limitLengths(freqs []int64, lengths []uint8, maxLen int) {
	used := cb.used[:0]
	for sym, l := range lengths {
		if l > 0 {
			used = append(used, symFreq{sym, freqs[sym]})
		}
	}
	cb.used = used
	// Sort by descending frequency: most frequent gets shortest code.
	// sort.Sort on the builder itself — sort.Slice's closure and
	// reflection swapper allocate on every call, two allocations per
	// dynamic-planned segment that the pooled pipeline exists to avoid.
	sort.Sort(cb)
	// Start from the clamped histogram.
	blCount := cb.blCount[:0]
	for i := 0; i <= maxLen; i++ {
		blCount = append(blCount, 0)
	}
	cb.blCount = blCount
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxLen {
			l = uint8(maxLen)
		}
		blCount[l]++
	}
	// Repair the Kraft equality (zlib's bl_count overflow fix): while
	// oversubscribed, turn one leaf at the deepest non-max level into
	// an internal node whose children absorb it and one max-depth leaf.
	// Each step lowers the Kraft sum (scaled by 2^maxLen) by exactly 1,
	// so the loop terminates precisely at a complete code — clamping
	// can only oversubscribe, never undersubscribe.
	kraft := func() int64 {
		var k int64
		for l := 1; l <= maxLen; l++ {
			k += int64(blCount[l]) << uint(maxLen-l)
		}
		return k
	}
	full := int64(1) << uint(maxLen)
	for kraft() > full {
		bits := maxLen - 1
		for bits > 0 && blCount[bits] == 0 {
			bits--
		}
		blCount[bits]--
		blCount[bits+1] += 2
		blCount[maxLen]--
	}
	// Assign lengths: shortest codes to most frequent symbols.
	i := 0
	for l := 1; l <= maxLen; l++ {
		for n := 0; n < blCount[l]; n++ {
			lengths[used[i].sym] = uint8(l)
			i++
		}
	}
}
