package deflate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lzssfpga/internal/lzss"
)

func resilientTestData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i % 251)
	}
	return data
}

func TestResilientMatchesFastPath(t *testing.T) {
	data := resilientTestData(300 << 10)
	p := lzss.HWSpeedParams()
	want, err := ParallelCompress(data, p, 64<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := ParallelCompressResilient(context.Background(), data, p,
		ParallelOpts{Segment: 64 << 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resilient path without faults diverged from ParallelCompress")
	}
	if rep.Retries != 0 || rep.Degraded != 0 || rep.PanicsRecovered != 0 {
		t.Fatalf("clean run reported recovery: %+v", rep)
	}
	if rep.Segments != 5 {
		t.Fatalf("segments = %d", rep.Segments)
	}
}

func TestResilientRecoversFromPanics(t *testing.T) {
	data := resilientTestData(200 << 10)
	p := lzss.HWSpeedParams()
	// Panic on every first attempt; succeed on retries.
	hook := func(ctx context.Context, seg, attempt int) error {
		if attempt == 0 {
			panic(fmt.Sprintf("injected panic in segment %d", seg))
		}
		return nil
	}
	out, rep, err := ParallelCompressResilient(context.Background(), data, p,
		ParallelOpts{Segment: 32 << 10, Workers: 3, SegmentHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PanicsRecovered != rep.Segments || rep.Retries != rep.Segments {
		t.Fatalf("expected one recovered panic + retry per segment: %+v", rep)
	}
	if rep.Degraded != 0 {
		t.Fatalf("retryable panics should not degrade: %+v", rep)
	}
	dec, err := ZlibDecompress(out)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("round trip after recovered panics: %v", err)
	}
}

func TestResilientDegradesToStored(t *testing.T) {
	data := resilientTestData(100 << 10)
	p := lzss.HWSpeedParams()
	// Segment 1 never succeeds: every attempt errors.
	hook := func(ctx context.Context, seg, attempt int) error {
		if seg == 1 {
			return errors.New("injected permanent fault")
		}
		return nil
	}
	out, rep, err := ParallelCompressResilient(context.Background(), data, p,
		ParallelOpts{Segment: 32 << 10, Workers: 2, MaxSegmentRetries: 3, SegmentHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != 1 {
		t.Fatalf("expected exactly the faulty segment degraded: %+v", rep)
	}
	dec, err := ZlibDecompress(out)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("round trip with a degraded segment: %v", err)
	}
}

func TestResilientStallTimeout(t *testing.T) {
	data := resilientTestData(64 << 10)
	p := lzss.HWSpeedParams()
	// First attempt of every segment stalls until its deadline.
	hook := func(ctx context.Context, seg, attempt int) error {
		if attempt == 0 {
			<-ctx.Done()
			return fmt.Errorf("stalled: %w", ctx.Err())
		}
		return nil
	}
	start := time.Now()
	out, rep, err := ParallelCompressResilient(context.Background(), data, p,
		ParallelOpts{Segment: 32 << 10, Workers: 2, SegmentTimeout: 20 * time.Millisecond, SegmentHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stalled attempts were not bounded by SegmentTimeout")
	}
	if rep.Retries < rep.Segments {
		t.Fatalf("stalls did not force retries: %+v", rep)
	}
	dec, err := ZlibDecompress(out)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("round trip after stalls: %v", err)
	}
}

func TestResilientContextCancel(t *testing.T) {
	data := resilientTestData(256 << 10)
	p := lzss.HWSpeedParams()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ParallelCompressResilient(ctx, data, p, ParallelOpts{Segment: 16 << 10})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

func TestResilientCarryRoundTrip(t *testing.T) {
	// Highly repetitive data exercises cross-segment references.
	data := bytes.Repeat(resilientTestData(1000), 100)
	p := lzss.HWSpeedParams()
	hook := func(ctx context.Context, seg, attempt int) error {
		if attempt == 0 && seg%2 == 0 {
			panic("injected")
		}
		return nil
	}
	out, rep, err := ParallelCompressResilient(context.Background(), data, p,
		ParallelOpts{Segment: 16 << 10, Workers: 4, Carry: true, SegmentHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PanicsRecovered == 0 {
		t.Fatalf("no panics recovered: %+v", rep)
	}
	dec, err := ZlibDecompress(out)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("carry round trip under panics: %v", err)
	}
}

func TestResilientEmptyInput(t *testing.T) {
	out, rep, err := ParallelCompressResilient(context.Background(), nil, lzss.HWSpeedParams(), ParallelOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 1 {
		t.Fatalf("empty input segments = %d", rep.Segments)
	}
	dec, err := ZlibDecompress(out)
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty round trip: %v", err)
	}
}

func TestStoredSegmentFraming(t *testing.T) {
	// Bigger than one stored block, verified via the normal inflater.
	chunk := resilientTestData(100_000)
	body := storedSegment(chunk, true)
	dec, err := Inflate(body.B)
	if err != nil || !bytes.Equal(dec, chunk) {
		t.Fatalf("stored segment final: %v", err)
	}
	// Non-final body needs the closing empty stored block.
	body = storedSegment(chunk, false)
	dec, err = Inflate(append(append([]byte(nil), body.B...), finalEmptyStored...))
	if err != nil || !bytes.Equal(dec, chunk) {
		t.Fatalf("stored segment non-final: %v", err)
	}
	// Empty chunk is just the framing block.
	if dec, err = Inflate(storedSegment(nil, true).B); err != nil || len(dec) != 0 {
		t.Fatalf("empty stored segment: %v", err)
	}
}
