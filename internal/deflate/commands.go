package deflate

import (
	"bytes"
	"fmt"

	"lzssfpga/internal/bitio"
	"lzssfpga/internal/token"
)

// ParseCommands decodes a raw Deflate stream into the LZSS command
// stream it encodes — the view a hardware decompressor's copy engine
// consumes. Stored-block bytes become literal commands.
//
// token.Expand(ParseCommands(x)) equals Inflate(x) for every valid x;
// the property is enforced by tests.
func ParseCommands(data []byte) ([]token.Command, error) {
	return ParseCommandsWithHistory(data, 0)
}

// ParseCommandsWithHistory is ParseCommands for streams whose matches
// may reach back into `history` bytes of preset dictionary.
func ParseCommandsWithHistory(data []byte, history int) ([]token.Command, error) {
	br := bitio.NewReader(bytes.NewReader(data))
	var cmds []token.Command
	produced := history
	for {
		final, err := br.ReadBool()
		if err != nil {
			return nil, err
		}
		btype, err := br.ReadBits(2)
		if err != nil {
			return nil, err
		}
		switch btype {
		case 0:
			br.AlignByte()
			n, err := br.ReadBits(16)
			if err != nil {
				return nil, err
			}
			nlen, err := br.ReadBits(16)
			if err != nil {
				return nil, err
			}
			if n != ^nlen&0xFFFF {
				return nil, fmt.Errorf("%w: stored length check", ErrCorrupt)
			}
			for i := 0; i < int(n); i++ {
				v, err := br.ReadBits(8)
				if err != nil {
					return nil, err
				}
				cmds = append(cmds, token.Lit(byte(v)))
				produced++
			}
		case 1:
			cmds, produced, err = parseSymbols(br, cmds, produced, fixedLitDec, fixedDistDec)
			if err != nil {
				return nil, err
			}
		case 2:
			lit, dist, err := readDynamicHeader(br)
			if err != nil {
				return nil, err
			}
			cmds, produced, err = parseSymbols(br, cmds, produced, lit, dist)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: reserved block type", ErrCorrupt)
		}
		if final {
			return cmds, nil
		}
	}
}

func parseSymbols(br *bitio.Reader, cmds []token.Command, produced int, lit, dist *huffDec) ([]token.Command, int, error) {
	for {
		sym, err := lit.decode(br)
		if err != nil {
			return nil, 0, err
		}
		switch {
		case sym < 256:
			cmds = append(cmds, token.Lit(byte(sym)))
			produced++
		case sym == endOfBlock:
			return cmds, produced, nil
		case sym <= maxLitLen:
			i := sym - 257
			length := int(lengthBase[i])
			if lengthExtra[i] > 0 {
				e, err := br.ReadBits(uint(lengthExtra[i]))
				if err != nil {
					return nil, 0, err
				}
				length += int(e)
			}
			dsym, err := dist.decode(br)
			if err != nil {
				return nil, 0, err
			}
			if dsym >= numDistSym {
				return nil, 0, fmt.Errorf("%w: distance symbol %d", ErrCorrupt, dsym)
			}
			d := int(distBase[dsym])
			if distExtra[dsym] > 0 {
				e, err := br.ReadBits(uint(distExtra[dsym]))
				if err != nil {
					return nil, 0, err
				}
				d += int(e)
			}
			if d > produced {
				return nil, 0, fmt.Errorf("%w: distance %d exceeds produced %d", ErrCorrupt, d, produced)
			}
			cmds = append(cmds, token.Copy(d, length))
			produced += length
		default:
			return nil, 0, fmt.Errorf("%w: literal/length symbol %d", ErrCorrupt, sym)
		}
	}
}
