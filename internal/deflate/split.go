package deflate

import (
	"bytes"

	"lzssfpga/internal/bitio"
	"lzssfpga/internal/token"
)

// Block splitting: per-block Huffman tables only pay off when the
// blocks' symbol statistics actually differ. SplitDeflate cuts the
// command stream into candidate blocks, greedily merges neighbours
// whenever one shared table is cheaper than two separate ones (header
// included), and emits each surviving block in its cheapest format.
// On homogeneous data it converges to a single block; on shifting data
// (text followed by binary followed by noise) it keeps the boundaries
// and beats any single-table encoding.

// splitCandidateCommands is the initial cut granularity.
const splitCandidateCommands = 8192

// segmentCost returns the encoded size in bits of cmds as one block,
// taking the cheaper of fixed and dynamic (stored is handled by the
// caller, which knows the raw bytes).
func segmentCost(cmds []token.Command) int {
	p := planDynamic(cmds)
	dyn := 3 + p.headerBits() + p.bodyBits(cmds)
	fix := 3 + 7
	for _, c := range cmds {
		fix += CommandBits(c)
	}
	if dyn < fix {
		return dyn
	}
	return fix
}

// SplitDeflate encodes cmds as a sequence of statistically coherent
// blocks and returns the raw Deflate stream.
func SplitDeflate(cmds []token.Command) ([]byte, error) {
	if len(cmds) == 0 {
		return FixedDeflate(cmds)
	}
	// Initial candidate boundaries.
	var bounds []int
	for i := 0; i < len(cmds); i += splitCandidateCommands {
		bounds = append(bounds, i)
	}
	bounds = append(bounds, len(cmds))
	costs := make([]int, len(bounds)-1)
	for i := range costs {
		costs[i] = segmentCost(cmds[bounds[i]:bounds[i+1]])
	}
	// Greedy neighbour merging: accept any merge that does not lose.
	for {
		merged := false
		for i := 0; i+1 < len(costs); i++ {
			joint := segmentCost(cmds[bounds[i]:bounds[i+2]])
			if joint <= costs[i]+costs[i+1] {
				bounds = append(bounds[:i+1], bounds[i+2:]...)
				costs[i] = joint
				costs = append(costs[:i+1], costs[i+2:]...)
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	// Emit.
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	for i := 0; i+1 < len(bounds); i++ {
		seg := cmds[bounds[i]:bounds[i+1]]
		final := i+2 == len(bounds)
		p := planDynamic(seg)
		dyn := p.headerBits() + p.bodyBits(seg)
		fix := 7
		for _, c := range seg {
			fix += CommandBits(c)
		}
		if dyn < fix {
			if err := p.emit(bw, seg, final); err != nil {
				return nil, err
			}
		} else {
			e := NewEncoder(bw)
			e.BeginBlock(final)
			if err := e.EncodeAll(seg); err != nil {
				return nil, err
			}
			e.EndBlock()
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ZlibCompressSplit wraps SplitDeflate in the zlib container.
func ZlibCompressSplit(cmds []token.Command, src []byte, window int) ([]byte, error) {
	body, err := SplitDeflate(cmds)
	if err != nil {
		return nil, err
	}
	return ZlibWrap(body, src, window)
}
