package deflate

import (
	"bytes"
	"compress/zlib"
	"io"
	"math/rand"
	"testing"

	"lzssfpga/internal/lzss"
	"lzssfpga/internal/workload"
)

// saRatioInputs mirrors the gen2 corpus table (internal/lzss) for the
// byte-level half of the cross-matcher battery.
func saRatioInputs(t *testing.T) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 96*1024)
	rng.Read(random)
	mixed := make([]byte, 64*1024)
	rng.Read(mixed[:len(mixed)/2])
	copy(mixed[len(mixed)/2:], bytes.Repeat([]byte("the quick brown fox "), 1700))
	return map[string][]byte{
		"random": random,
		"zeros":  make([]byte, 64*1024),
		"wiki":   workload.Wiki(96*1024, 3),
		"mixed":  mixed,
		"tiny":   []byte("abc"),
		"empty":  nil,
	}
}

func zlibSizeAt(t *testing.T, data []byte, p lzss.Params) int {
	t.Helper()
	cmds, _, err := lzss.Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ZlibCompress(cmds, data, p.Window)
	if err != nil {
		t.Fatal(err)
	}
	return len(z)
}

// TestSARatioMonotonicVsGreedyLevel6: on every corpus of the gen2
// table, each suffix-array level's zlib output must be no larger than
// the GREEDY level-6 output (level-6 parameters with lazy matching
// off) — the ratio-monotonicity half of the cross-matcher property
// suite. Decoding byte-exactness is asserted along the way with the
// stdlib oracle.
func TestSARatioMonotonicVsGreedyLevel6(t *testing.T) {
	inputs := saRatioInputs(t)
	g6 := lzss.LevelParams(lzss.LevelDefault, 32768, 15)
	g6.Lazy, g6.MaxLazy = false, 0
	for name, data := range inputs {
		greedySize := zlibSizeAt(t, data, g6)
		for _, lvl := range []lzss.Level{10, 11, 12} {
			p := lzss.SARatioParams(lvl)
			cmds, _, err := lzss.Compress(data, p)
			if err != nil {
				t.Fatal(err)
			}
			z, err := ZlibCompress(cmds, data, p.Window)
			if err != nil {
				t.Fatal(err)
			}
			zr, err := zlib.NewReader(bytes.NewReader(z))
			if err != nil {
				t.Fatalf("%s level %d: %v", name, lvl, err)
			}
			out, err := io.ReadAll(zr)
			zr.Close()
			if err != nil || !bytes.Equal(out, data) {
				t.Fatalf("%s level %d: stdlib round trip failed: %v", name, lvl, err)
			}
			if len(z) > greedySize {
				t.Fatalf("%s level %d: SA output %d bytes > greedy level-6 %d bytes",
					name, lvl, len(z), greedySize)
			}
		}
	}
}

// TestSAParallelPipeline: the pooled parallel pipeline must serve the
// SA tier per-segment — multi-segment payloads, both with and without
// dictionary carry-over, round-tripping through the stdlib and the
// hardened inflater.
func TestSAParallelPipeline(t *testing.T) {
	data := workload.Wiki(1<<20, 5)
	p := lzss.SARatioParams(11)
	for _, tc := range []struct {
		name  string
		carry bool
	}{{"segmented", false}, {"carry", true}} {
		t.Run(tc.name, func(t *testing.T) {
			var z []byte
			var err error
			if tc.carry {
				z, err = ParallelCompressDict(data, p, 128<<10, 4)
			} else {
				z, err = ParallelCompress(data, p, 128<<10, 4)
			}
			if err != nil {
				t.Fatal(err)
			}
			zr, err := zlib.NewReader(bytes.NewReader(z))
			if err != nil {
				t.Fatal(err)
			}
			out, err := io.ReadAll(zr)
			zr.Close()
			if err != nil || !bytes.Equal(out, data) {
				t.Fatalf("stdlib round trip failed: %v", err)
			}
			hout, err := ZlibDecompressLimited(z, DecodeLimits{MaxOutputBytes: len(data) + 64, MaxBlocks: 1 << 16})
			if err != nil || !bytes.Equal(hout, data) {
				t.Fatalf("hardened round trip failed: %v", err)
			}
		})
	}
}
