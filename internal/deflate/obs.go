package deflate

import (
	"sync/atomic"

	"lzssfpga/internal/obs"
)

// queueWaitBounds buckets segment queue wait in microseconds.
var queueWaitBounds = []int64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 1000000}

// deflateSink holds the registry handles for the deflate_* family:
// parallel-pipeline accounting plus the streaming writer's counters.
// All updates are per-segment / per-block, never per byte.
type deflateSink struct {
	parallelRuns *obs.Counter
	segments     *obs.Counter
	inBytes      *obs.Counter
	outBytes     *obs.Counter
	queueWaitUs  *obs.Histogram
	workerBusyNs *obs.Counter
	poolGets     *obs.Counter
	poolRebuilds *obs.Counter
	lastRatio    *obs.Gauge

	segmentsDegraded *obs.Counter
	workerPanics     *obs.Counter

	streamInBytes  *obs.Counter
	streamOutBytes *obs.Counter
	streamBlocks   *obs.Counter
	streamFlushes  *obs.Counter
}

var deflateObs atomic.Pointer[deflateSink]

// SetObservability wires the package's deflate_* metrics into reg
// (nil disables).
func SetObservability(reg *obs.Registry) {
	if reg == nil {
		deflateObs.Store(nil)
		return
	}
	deflateObs.Store(&deflateSink{
		parallelRuns: reg.Counter(obs.DeflateParallelRuns),
		segments:     reg.Counter(obs.DeflateSegments),
		inBytes:      reg.Counter(obs.DeflateInBytes),
		outBytes:     reg.Counter(obs.DeflateOutBytes),
		queueWaitUs:  reg.Histogram(obs.DeflateQueueWaitUs, queueWaitBounds),
		workerBusyNs: reg.Counter(obs.DeflateWorkerBusyNs),
		poolGets:     reg.Counter(obs.DeflatePoolGets),
		poolRebuilds: reg.Counter(obs.DeflatePoolRebuilds),
		lastRatio:    reg.Gauge(obs.DeflateLastRatio),

		segmentsDegraded: reg.Counter(obs.DeflateSegmentsDegraded),
		workerPanics:     reg.Counter(obs.DeflateWorkerPanicsRecovered),
		streamInBytes:    reg.Counter(obs.DeflateStreamInBytes),
		streamOutBytes:   reg.Counter(obs.DeflateStreamOutBytes),
		streamBlocks:     reg.Counter(obs.DeflateStreamBlocks),
		streamFlushes:    reg.Counter(obs.DeflateStreamFlushes),
	})
}
