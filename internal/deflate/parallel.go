package deflate

import (
	"bytes"
	"runtime"
	"sync"

	"lzssfpga/internal/lzss"
)

// ParallelCompress compresses data into a standard zlib stream using
// independent worker goroutines, pigz-style: the input is cut into
// segments, each segment is LZSS-matched and Huffman-coded as its own
// Deflate block(s) with a fresh dictionary, and the blocks are
// concatenated in order. The output is deterministic — identical for
// any worker count — and decodable by any inflater; the price of the
// parallelism is that matches cannot cross segment boundaries.
//
// segment is the cut size (0 selects 256 KiB, a good ratio/parallelism
// balance); workers defaults to GOMAXPROCS.
func ParallelCompress(data []byte, p lzss.Params, segment, workers int) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if segment <= 0 {
		segment = 256 << 10
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nSeg := (len(data) + segment - 1) / segment
	if nSeg == 0 {
		nSeg = 1
	}
	bodies := make([][]byte, nSeg)
	errs := make([]error, nSeg)

	var wg sync.WaitGroup
	jobs := make(chan int)
	if workers > nSeg {
		workers = nSeg
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				lo := i * segment
				hi := lo + segment
				if hi > len(data) {
					hi = len(data)
				}
				bodies[i], errs[i] = compressSegment(data[lo:hi], p, i == nSeg-1)
			}
		}()
	}
	for i := 0; i < nSeg; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out bytes.Buffer
	hdr, err := ZlibHeader(p.Window)
	if err != nil {
		return nil, err
	}
	out.Write(hdr[:])
	for _, b := range bodies {
		out.Write(b)
	}
	sum := AdlerChecksum(data)
	out.Write([]byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	return out.Bytes(), nil
}

// compressSegment produces byte-aligned Deflate blocks for one segment.
// Alignment matters: segments are encoded independently and then
// concatenated, so each must end on a byte boundary. A zero-length
// stored block provides the alignment padding (and carries the BFINAL
// flag on the last segment) — the classic Z_FULL_FLUSH framing.
func compressSegment(seg []byte, p lzss.Params, final bool) ([]byte, error) {
	cmds, _, err := lzss.Compress(seg, p)
	if err != nil {
		return nil, err
	}
	plan := planDynamic(cmds)
	dynBits := plan.headerBits() + plan.bodyBits(cmds)
	fixBits := 7
	for _, c := range cmds {
		fixBits += CommandBits(c)
	}
	var buf bytes.Buffer
	bw := newSegWriter(&buf)
	if dynBits < fixBits {
		if err := plan.emit(bw, cmds, false); err != nil {
			return nil, err
		}
	} else {
		e := NewEncoder(bw)
		e.BeginBlock(false)
		for _, c := range cmds {
			if err := e.Encode(c); err != nil {
				return nil, err
			}
		}
		e.EndBlock()
	}
	// Alignment / final marker: an empty stored block.
	bw.WriteBool(final)
	bw.WriteBits(0b00, 2)
	bw.AlignByte()
	bw.WriteBits(0, 16)
	bw.WriteBits(0xFFFF, 16)
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
