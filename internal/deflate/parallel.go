package deflate

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"lzssfpga/internal/bitio"
	"lzssfpga/internal/engine"
	"lzssfpga/internal/lzss"
	"lzssfpga/internal/obs"
	"lzssfpga/internal/token"
)

// segWorker is the reusable per-goroutine state of the parallel
// compressor: matcher hash tables, the command buffer and the encoded
// output buffer all survive from segment to segment (and, through the
// pool, from call to call), so the steady-state hot path allocates only
// the per-segment result slice.
type segWorker struct {
	p    lzss.Params
	m    *lzss.Matcher
	cmds []token.Command
	out  sliceBuffer
	bw   *bitio.Writer
	plan dynamicPlan
	// Per-run observability context, set by the worker loop before
	// each segment and cleared before pooling: the run's tracer (nil
	// when tracing is off), the worker's trace row, and the segment
	// index being compressed.
	tr  *obs.Tracer
	tid int
	seg int
	// shard is the engine shard whose arena stack serves this worker's
	// output buffers (-1 = global tier), set by the job body from the
	// executing worker id.
	shard int
}

// sliceBuffer is the minimal io.Writer the bit writer needs: an
// appendable byte slice that can be reset without freeing its backing
// array (bytes.Buffer would do, but shifts bytes on Read and keeps
// internal state the pipeline never uses).
type sliceBuffer struct{ b []byte }

func (s *sliceBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

var segWorkerPool = sync.Pool{New: func() any { return new(segWorker) }}

// getSegWorker fetches a pooled worker, rebuilding the matcher when the
// pooled one was configured differently (table sizes or policy).
func getSegWorker(p lzss.Params) (*segWorker, error) {
	k := deflateObs.Load()
	w := segWorkerPool.Get().(*segWorker)
	if k != nil {
		k.poolGets.Inc()
	}
	if w.m == nil || !w.p.SameConfig(p) {
		if k != nil {
			k.poolRebuilds.Inc()
		}
		m, err := lzss.NewMatcher(nil, p, nil)
		if err != nil {
			segWorkerPool.Put(w)
			return nil, err
		}
		w.m = m
		w.p = p
	}
	if w.bw == nil {
		w.bw = bitio.NewWriter(&w.out)
	}
	w.shard = -1
	return w, nil
}

// putSegWorker drops references into the caller's data before pooling,
// so a cached worker never pins a user buffer.
func putSegWorker(w *segWorker) {
	w.m.Reset(nil)
	w.cmds = w.cmds[:0]
	w.out.b = w.out.b[:0]
	w.tr = nil
	segWorkerPool.Put(w)
}

// ParallelCompress compresses data into a standard zlib stream on the
// shared persistent engine, pigz-style: the input is cut into segments,
// each segment is LZSS-matched and Huffman-coded as its own Deflate
// block(s) with a fresh dictionary, and the blocks stream out in order
// as they complete. The output is deterministic — identical for any
// worker count — and decodable by any inflater; the price of the
// parallelism is that matches cannot cross segment boundaries.
//
// segment is the cut size (0 selects 256 KiB, a good ratio/parallelism
// balance; SegmentAdaptive lets the engine's sizer choose, trading
// determinism for utilization). workers caps this call's in-flight
// segments; 0 means the engine's full width (one worker per shard,
// sized to GOMAXPROCS at engine start).
func ParallelCompress(data []byte, p lzss.Params, segment, workers int) ([]byte, error) {
	return parallelCompress(data, p, segment, workers, false, nil)
}

// ParallelCompressDict is ParallelCompress with dictionary carry-over
// (pigz's default mode): each segment's matcher is preset with the
// trailing window of its predecessor, so matches reach back across the
// cut. The ratio loss of segmenting all but disappears; the output is
// still one standard zlib stream any inflater decodes, because an
// inflater's history window spans block boundaries. Within a segment
// matching is greedy (the dictionary path is policy-shared with
// CompressWithDict).
func ParallelCompressDict(data []byte, p lzss.Params, segment, workers int) ([]byte, error) {
	return parallelCompress(data, p, segment, workers, true, nil)
}

// ParallelCompressTraced is ParallelCompress(Dict) with a span tracer
// observing the pipeline stages: one "split" span for segmentation
// planning, per-segment "match" and "encode" spans on the owning
// worker's trace row, and one "assemble" span for stream assembly. tr
// may be nil (no tracing).
func ParallelCompressTraced(data []byte, p lzss.Params, segment, workers int, carry bool, tr *obs.Tracer) ([]byte, error) {
	return parallelCompress(data, p, segment, workers, carry, tr)
}

// parallelCompress runs a request on the shared persistent engine and
// collects the stream into one preallocated buffer (sized from the
// running ratio estimate). The steady-state request path allocates only
// the returned output buffer (jobs, reorder state and segment bodies
// all recycle through pools and the engine arena).
func parallelCompress(data []byte, p lzss.Params, segment, workers int, carry bool, tr *obs.Tracer) ([]byte, error) {
	out := make([]byte, 0, estimateOut(len(data)))
	err := parallelCompressCore(context.Background(), data, 0, false, 0, p, segment, workers, carry, tr,
		func(b []byte) error {
			out = append(out, b...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParallelCompressPreset compresses data against a preset dictionary
// into an RFC 1950 FDICT stream (header flag set, DICTID = the
// dictionary's Adler-32) on the shared persistent engine. The
// dictionary's trailing Window-1 bytes are laid down as history in
// front of the data — exactly the layout lzss.CompressWithDict uses —
// and every segment runs with dictionary carry-over, so segment 0's
// matches reach into the preset window and later segments reach their
// predecessors. Any zlib implementation holding the same dictionary
// (e.g. ZlibDecompressDict) decodes the result.
func ParallelCompressPreset(data, dict []byte, p lzss.Params, segment, workers int) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	capped := dict
	if reach := p.Window - 1; len(capped) > reach {
		capped = capped[len(capped)-reach:]
	}
	// One contiguous buffer: [dictionary tail | data]. The copy is the
	// price of adjacency (CompressTail needs the history physically in
	// front of the segment); it is linear and dwarfed by matching.
	buf := make([]byte, 0, len(capped)+len(data))
	buf = append(buf, capped...)
	buf = append(buf, data...)
	out := make([]byte, 0, estimateOut(len(data))+10)
	err := parallelCompressCore(context.Background(), buf, len(capped), true, AdlerChecksum(dict),
		p, segment, workers, true,
		nil, func(b []byte) error {
			out = append(out, b...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParallelCompressTo is ParallelCompress with a streaming sink: segment
// bodies are written to w in index order as they complete, so the first
// compressed bytes reach the consumer (a network client, a pipe) while
// later segments are still compressing. ctx cancellation stops feeding
// the engine — segments already queued complete into the reorder buffer
// and are discarded — and the call returns ctx.Err(). The return value
// is the byte count written to w; on any error the stream written so
// far is incomplete and must be discarded by the consumer.
func ParallelCompressTo(ctx context.Context, w io.Writer, data []byte, p lzss.Params, segment, workers int) (int64, error) {
	var n int64
	err := parallelCompressCore(ctx, data, 0, false, 0, p, segment, workers, false, nil,
		func(b []byte) error {
			k, werr := w.Write(b)
			n += int64(k)
			return werr
		})
	return n, err
}

// parallelCompressCore is the shared driver of the buffered and
// streaming parallel paths: it plans the cut, submits pooled segment
// jobs with the worker budget as the in-flight cap, and hands completed
// bodies to write in index order while later segments are still
// compressing. A write error stops emission (remaining bodies are still
// drained and recycled) and becomes the call's error.
//
// data[:base] is preset-dictionary history: it is matched against but
// never emitted, the segment plan covers data[base:] only, and the
// Adler trailer sums data[base:]. With fdict set the container is the
// six-byte FDICT header carrying dictID instead of the plain two-byte
// one. Non-dictionary callers pass (0, false, 0).
func parallelCompressCore(ctx context.Context, data []byte, base int, fdict bool, dictID uint32,
	p lzss.Params, segment, workers int, carry bool, tr *obs.Tracer, write func([]byte) error) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if workers <= 0 {
		// Fast-path segments are pure CPU: in-flight work beyond the
		// machine's parallelism buys nothing and interleaves extra pooled
		// matchers (hash tables) through the caches. The resilient path
		// keeps the engine's full width instead — its segments block on
		// injected stalls and deadlines, so overlap there is the point.
		workers = runtime.GOMAXPROCS(0)
	}
	k := deflateObs.Load()
	rt := obs.RequestFromContext(ctx)
	splitStart := time.Now()
	plan := planSegments(len(data)-base, segment)
	var hdr []byte
	if fdict {
		h, err := zlibDictHeader(p.Window, dictID)
		if err != nil {
			return err
		}
		hdr = h[:]
	} else {
		h, err := ZlibHeader(p.Window)
		if err != nil {
			return err
		}
		hdr = h[:]
	}
	var written int64
	var firstErr error
	sink := func(b []byte) {
		if firstErr != nil {
			return
		}
		if err := write(b); err != nil {
			firstErr = err
			return
		}
		written += int64(len(b))
	}
	sink(hdr)

	eng := defaultEngine()
	jobs := getJobs(plan.nSeg)
	defer putJobs(jobs)
	emit := func(b *engine.Buf, err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if b != nil {
			sink(b.B)
			engine.PutBuf(b)
		}
	}
	if tr != nil {
		tr.Span("split", 0, splitStart, time.Since(splitStart),
			fmt.Sprintf(`{"segments":%d,"workers":%d}`, plan.nSeg, eng.Shards()))
	}
	submitErr := eng.SubmitAndStream(ctx, plan.nSeg, workers,
		func(i int, r *engine.Request) engine.Job {
			j := &(*jobs)[i]
			lo := base + i*plan.segment
			hi := lo + plan.segment
			if hi > len(data) {
				hi = len(data)
			}
			*j = pjob{
				req: r, data: data, p: p, idx: i,
				lo: lo, hi: hi, dictLo: dictLow(lo, carry, p),
				final: i == plan.nSeg-1, tr: tr, rt: rt, adaptive: plan.adaptive,
			}
			if k != nil || rt != nil {
				j.submitAt = time.Now()
			}
			return j
		}, emit)
	if firstErr != nil {
		return firstErr
	}
	if submitErr != nil {
		return submitErr
	}
	// Finalize: Adler-32 trailer onto the streamed body bytes (the
	// preset-history prefix is matched against but never summed).
	assembleStart := time.Now()
	sum := AdlerChecksum(data[base:])
	sink([]byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	if firstErr != nil {
		return firstErr
	}
	if tr != nil {
		tr.Span("assemble", 0, assembleStart, time.Since(assembleStart), fmt.Sprintf(`{"bytes":%d}`, written))
	}
	if k != nil {
		k.parallelRuns.Inc()
		if written > 0 {
			k.lastRatio.Set(float64(len(data)-base) / float64(written))
		}
	}
	observeRatio(float64(len(data)-base) / float64(written))
	return nil
}

// compressSegment produces byte-aligned Deflate blocks for one segment,
// buf[origin:]; buf[:origin] is preset history the matcher may reach
// into (empty without dictionary carry-over). Alignment matters:
// segments are encoded independently and then concatenated, so each
// must end on a byte boundary. A zero-length stored block provides the
// alignment padding (and carries the BFINAL flag on the last segment) —
// the classic Z_FULL_FLUSH framing. The body is encoded directly into
// an arena buffer sized from hint and returned without copying; the
// caller recycles it (engine.PutBuf) after assembly. All other scratch
// state lives in the worker.
func (w *segWorker) compressSegment(buf []byte, origin int, final bool, hint int) (*engine.Buf, error) {
	matchStart := time.Now()
	if origin > 0 {
		w.cmds = lzss.CompressTail(w.cmds[:0], w.m, buf, origin)
	} else {
		w.cmds = lzss.CompressReuse(w.cmds[:0], w.m, buf)
	}
	if w.tr != nil {
		w.tr.Span("match", w.tid, matchStart, time.Since(matchStart),
			fmt.Sprintf(`{"segment":%d,"bytes":%d,"commands":%d}`, w.seg, len(buf)-origin, len(w.cmds)))
	}
	encodeStart := time.Now()
	cmds := w.cmds
	plan := &w.plan
	plan.plan(cmds)
	dynBits := plan.headerBits() + plan.bodyBits(cmds)
	fixBits := 7
	for _, c := range cmds {
		fixBits += CommandBits(c)
	}
	// Encode straight into an arena buffer: the filled buffer IS the
	// returned body, so the old copy-to-fresh-slice step is gone. On an
	// error path the buffer goes straight back to the arena.
	ab := engine.GetBufShard(hint, w.shard)
	w.out.b = ab.B
	fail := func(err error) (*engine.Buf, error) {
		w.out.b = nil
		engine.PutBuf(ab)
		return nil, err
	}
	bw := w.bw
	bw.Reset(&w.out)
	if dynBits < fixBits {
		if err := plan.emit(bw, cmds, false); err != nil {
			return fail(err)
		}
	} else {
		e := NewEncoder(bw)
		e.BeginBlock(false)
		if err := e.EncodeAll(cmds); err != nil {
			return fail(err)
		}
		e.EndBlock()
	}
	// Alignment / final marker: an empty stored block.
	bw.WriteBool(final)
	bw.WriteBits(0b00, 2)
	bw.AlignByte()
	bw.WriteBits(0, 16)
	bw.WriteBits(0xFFFF, 16)
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	ab.B = w.out.b
	w.out.b = nil
	if w.tr != nil {
		w.tr.Span("encode", w.tid, encodeStart, time.Since(encodeStart),
			fmt.Sprintf(`{"segment":%d,"bytes":%d}`, w.seg, len(ab.B)))
	}
	return ab, nil
}
