package deflate

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lzssfpga/internal/bitio"
	"lzssfpga/internal/lzss"
	"lzssfpga/internal/obs"
	"lzssfpga/internal/token"
)

// segWorker is the reusable per-goroutine state of the parallel
// compressor: matcher hash tables, the command buffer and the encoded
// output buffer all survive from segment to segment (and, through the
// pool, from call to call), so the steady-state hot path allocates only
// the per-segment result slice.
type segWorker struct {
	p    lzss.Params
	m    *lzss.Matcher
	cmds []token.Command
	out  sliceBuffer
	bw   *bitio.Writer
	plan dynamicPlan
	// Per-run observability context, set by the worker loop before
	// each segment and cleared before pooling: the run's tracer (nil
	// when tracing is off), the worker's trace row, and the segment
	// index being compressed.
	tr  *obs.Tracer
	tid int
	seg int
}

// sliceBuffer is the minimal io.Writer the bit writer needs: an
// appendable byte slice that can be reset without freeing its backing
// array (bytes.Buffer would do, but shifts bytes on Read and keeps
// internal state the pipeline never uses).
type sliceBuffer struct{ b []byte }

func (s *sliceBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

var segWorkerPool = sync.Pool{New: func() any { return new(segWorker) }}

// getSegWorker fetches a pooled worker, rebuilding the matcher when the
// pooled one was configured differently (table sizes or policy).
func getSegWorker(p lzss.Params) (*segWorker, error) {
	k := deflateObs.Load()
	w := segWorkerPool.Get().(*segWorker)
	if k != nil {
		k.poolGets.Inc()
	}
	if w.m == nil || !w.p.SameConfig(p) {
		if k != nil {
			k.poolRebuilds.Inc()
		}
		m, err := lzss.NewMatcher(nil, p, nil)
		if err != nil {
			segWorkerPool.Put(w)
			return nil, err
		}
		w.m = m
		w.p = p
	}
	if w.bw == nil {
		w.bw = bitio.NewWriter(&w.out)
	}
	return w, nil
}

// putSegWorker drops references into the caller's data before pooling,
// so a cached worker never pins a user buffer.
func putSegWorker(w *segWorker) {
	w.m.Reset(nil)
	w.cmds = w.cmds[:0]
	w.out.b = w.out.b[:0]
	w.tr = nil
	segWorkerPool.Put(w)
}

// ParallelCompress compresses data into a standard zlib stream using
// independent worker goroutines, pigz-style: the input is cut into
// segments, each segment is LZSS-matched and Huffman-coded as its own
// Deflate block(s) with a fresh dictionary, and the blocks are
// concatenated in order. The output is deterministic — identical for
// any worker count — and decodable by any inflater; the price of the
// parallelism is that matches cannot cross segment boundaries.
//
// segment is the cut size (0 selects 256 KiB, a good ratio/parallelism
// balance); workers defaults to GOMAXPROCS.
func ParallelCompress(data []byte, p lzss.Params, segment, workers int) ([]byte, error) {
	return parallelCompress(data, p, segment, workers, false, nil)
}

// ParallelCompressDict is ParallelCompress with dictionary carry-over
// (pigz's default mode): each segment's matcher is preset with the
// trailing window of its predecessor, so matches reach back across the
// cut. The ratio loss of segmenting all but disappears; the output is
// still one standard zlib stream any inflater decodes, because an
// inflater's history window spans block boundaries. Within a segment
// matching is greedy (the dictionary path is policy-shared with
// CompressWithDict).
func ParallelCompressDict(data []byte, p lzss.Params, segment, workers int) ([]byte, error) {
	return parallelCompress(data, p, segment, workers, true, nil)
}

// ParallelCompressTraced is ParallelCompress(Dict) with a span tracer
// observing the pipeline stages: one "split" span for segmentation
// planning, per-segment "match" and "encode" spans on the owning
// worker's trace row, and one "assemble" span for stream assembly. tr
// may be nil (no tracing).
func ParallelCompressTraced(data []byte, p lzss.Params, segment, workers int, carry bool, tr *obs.Tracer) ([]byte, error) {
	return parallelCompress(data, p, segment, workers, carry, tr)
}

func parallelCompress(data []byte, p lzss.Params, segment, workers int, carry bool, tr *obs.Tracer) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := deflateObs.Load()
	splitStart := time.Now()
	if segment <= 0 {
		segment = 256 << 10
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nSeg := (len(data) + segment - 1) / segment
	if nSeg == 0 {
		nSeg = 1
	}
	bodies := make([][]byte, nSeg)
	errs := make([]error, nSeg)
	// submits[i] is when segment i entered the job queue; a worker
	// reads it after receiving i from the channel (the channel receive
	// orders the write before the read). Only allocated when someone is
	// watching — the wait ends up in the deflate_queue_wait_us buckets.
	var submits []time.Time
	if k != nil {
		submits = make([]time.Time, nSeg)
	}

	var wg sync.WaitGroup
	jobs := make(chan int)
	if workers > nSeg {
		workers = nSeg
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			sw, err := getSegWorker(p)
			if err != nil {
				for i := range jobs {
					errs[i] = err
				}
				return
			}
			defer putSegWorker(sw)
			sw.tr = tr
			sw.tid = tid
			for i := range jobs {
				segStart := time.Now()
				if k != nil {
					k.queueWaitUs.Observe(segStart.Sub(submits[i]).Microseconds())
				}
				lo := i * segment
				hi := lo + segment
				if hi > len(data) {
					hi = len(data)
				}
				dictLo := lo
				if carry {
					if reach := p.Window - 1; lo > reach {
						dictLo = lo - reach
					} else {
						dictLo = 0
					}
				}
				sw.seg = i
				bodies[i], errs[i] = sw.compressSegment(data[dictLo:hi], lo-dictLo, i == nSeg-1)
				if k != nil {
					k.segments.Inc()
					k.inBytes.Add(int64(hi - lo))
					k.outBytes.Add(int64(len(bodies[i])))
					k.workerBusyNs.Add(time.Since(segStart).Nanoseconds())
				}
			}
		}(w + 1)
	}
	tr.Span("split", 0, splitStart, time.Since(splitStart), fmt.Sprintf(`{"segments":%d,"workers":%d}`, nSeg, workers))
	for i := 0; i < nSeg; i++ {
		if submits != nil {
			submits[i] = time.Now()
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Assemble header, bodies and trailer into one presized buffer.
	assembleStart := time.Now()
	hdr, err := ZlibHeader(p.Window)
	if err != nil {
		return nil, err
	}
	total := len(hdr) + 4
	for _, b := range bodies {
		total += len(b)
	}
	out := make([]byte, 0, total)
	out = append(out, hdr[:]...)
	for _, b := range bodies {
		out = append(out, b...)
	}
	sum := AdlerChecksum(data)
	out = append(out, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	tr.Span("assemble", 0, assembleStart, time.Since(assembleStart), fmt.Sprintf(`{"bytes":%d}`, len(out)))
	if k != nil {
		k.parallelRuns.Inc()
		if len(out) > 0 {
			k.lastRatio.Set(float64(len(data)) / float64(len(out)))
		}
	}
	return out, nil
}

// compressSegment produces byte-aligned Deflate blocks for one segment,
// buf[origin:]; buf[:origin] is preset history the matcher may reach
// into (empty without dictionary carry-over). Alignment matters:
// segments are encoded independently and then concatenated, so each
// must end on a byte boundary. A zero-length stored block provides the
// alignment padding (and carries the BFINAL flag on the last segment) —
// the classic Z_FULL_FLUSH framing. The returned slice is freshly
// allocated; all scratch state lives in the worker.
func (w *segWorker) compressSegment(buf []byte, origin int, final bool) ([]byte, error) {
	matchStart := time.Now()
	if origin > 0 {
		w.cmds = lzss.CompressTail(w.cmds[:0], w.m, buf, origin)
	} else {
		w.cmds = lzss.CompressReuse(w.cmds[:0], w.m, buf)
	}
	if w.tr != nil {
		w.tr.Span("match", w.tid, matchStart, time.Since(matchStart),
			fmt.Sprintf(`{"segment":%d,"bytes":%d,"commands":%d}`, w.seg, len(buf)-origin, len(w.cmds)))
	}
	encodeStart := time.Now()
	cmds := w.cmds
	plan := &w.plan
	plan.plan(cmds)
	dynBits := plan.headerBits() + plan.bodyBits(cmds)
	fixBits := 7
	for _, c := range cmds {
		fixBits += CommandBits(c)
	}
	w.out.b = w.out.b[:0]
	bw := w.bw
	bw.Reset(&w.out)
	if dynBits < fixBits {
		if err := plan.emit(bw, cmds, false); err != nil {
			return nil, err
		}
	} else {
		e := NewEncoder(bw)
		e.BeginBlock(false)
		for _, c := range cmds {
			if err := e.Encode(c); err != nil {
				return nil, err
			}
		}
		e.EndBlock()
	}
	// Alignment / final marker: an empty stored block.
	bw.WriteBool(final)
	bw.WriteBits(0b00, 2)
	bw.AlignByte()
	bw.WriteBits(0, 16)
	bw.WriteBits(0xFFFF, 16)
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	body := make([]byte, len(w.out.b))
	copy(body, w.out.b)
	if w.tr != nil {
		w.tr.Span("encode", w.tid, encodeStart, time.Since(encodeStart),
			fmt.Sprintf(`{"segment":%d,"bytes":%d}`, w.seg, len(body)))
	}
	return body, nil
}
