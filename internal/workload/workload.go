// Package workload generates the two evaluation corpora the paper uses,
// as deterministic synthetic equivalents:
//
//   - "Wiki": the paper compresses fragments of a Wikipedia text
//     snapshot (the Large Text Compression Benchmark's enwik dump). We
//     cannot ship that corpus, so Wiki() emits English-like encyclopedic
//     text — Zipf-weighted vocabulary, sentence templates, wiki markup —
//     whose redundancy profile (match-length/distance mix, ~1.7x ratio
//     at fast settings) lands where enwik does.
//
//   - "X2E": a log from an automotive CAN bus logger. CAN() emits binary
//     frame records from a set of periodic message IDs with
//     slowly-varying signal payloads, the characteristic structure of
//     such logs.
//
// All generators are pure functions of (size, seed).
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Generator produces exactly n bytes determined by seed.
type Generator func(n int, seed int64) []byte

// ByName resolves the corpus names used throughout the benchmarks.
func ByName(name string) (Generator, error) {
	switch name {
	case "wiki", "Wiki":
		return Wiki, nil
	case "x2e", "X2E", "can", "CAN":
		return CAN, nil
	case "random":
		return Random, nil
	case "zeros":
		return Zeros, nil
	case "bitstream":
		return Bitstream, nil
	case "mixed":
		return Mixed, nil
	case "json", "jsonish", "JSON":
		return JSONish, nil
	default:
		return nil, fmt.Errorf("workload: unknown corpus %q (want wiki, x2e, json, bitstream, random or zeros)", name)
	}
}

// vocabulary for the Wiki generator. Order matters: earlier words get
// higher Zipf weight, mimicking natural-language frequency.
var wikiVocab = []string{
	"the", "of", "and", "in", "to", "a", "is", "was", "for", "as",
	"on", "with", "by", "that", "from", "at", "it", "an", "are", "its",
	"which", "also", "were", "has", "had", "be", "this", "first", "one", "their",
	"city", "state", "system", "century", "world", "university", "government", "population",
	"history", "language", "national", "region", "period", "species", "album", "族",
	"country", "empire", "river", "station", "church", "company", "village", "district",
	"member", "group", "family", "player", "season", "team", "army", "battle",
	"building", "railway", "school", "party", "election", "president", "minister", "council",
	"science", "theory", "energy", "surface", "process", "structure", "program", "project",
	"development", "production", "information", "administration", "organization", "community",
	"established", "located", "known", "considered", "included", "developed", "produced",
	"founded", "designed", "published", "recorded", "described", "elected", "constructed",
	"approximately", "significant", "important", "major", "large", "small", "early", "late",
	"northern", "southern", "eastern", "western", "central", "local", "international",
	"example", "number", "area", "part", "time", "year", "years", "people", "name",
	"second", "third", "largest", "original", "former", "current", "modern", "ancient",
}

var wikiTopics = []string{
	"Kaiserslautern", "Virtex", "Lempel", "Ziv", "Huffman", "Deflate",
	"Bavaria", "Rhineland", "Palatinate", "Danube", "Prussia", "Saxony",
	"Mesopotamia", "Byzantium", "Carthage", "Alexandria", "Cordoba",
}

var wikiTemplates = []string{
	"%T is %w %w %w of %w %w %w.",
	"In %y, %T %w %w %w %w the %w %w.",
	"The %w of %T %w %w in the %w %w, %w %w %w %w.",
	"%T, %w in %y, %w the %w %w %w %w %w.",
	"According to the %w %w, %T %w %w %w %w %w %w.",
	"%T was %w as %w %w %w of the %w %w in %y.",
}

// Wiki returns n bytes of deterministic English-like encyclopedic text.
func Wiki(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x57494b49))
	out := make([]byte, 0, n+256)
	// Zipf sampler over the vocabulary: weight(i) ∝ 1/(i+2)^s. The
	// exponent and the rare-word synthesis below are calibrated so the
	// fast hardware settings land near the paper's ~1.68 ratio.
	zipf := rand.NewZipf(rng, 1.03, 2.0, uint64(len(wikiVocab)-1))
	var wbuf []byte
	word := func() string {
		// A slice of natural text is hapax legomena — words seen once.
		// Synthesize them so the stream is not a closed vocabulary.
		if rng.Intn(8) < 3 {
			wbuf = wbuf[:0]
			syll := 2 + rng.Intn(4)
			for i := 0; i < syll; i++ {
				wbuf = append(wbuf, "bcdfghklmnprstvz"[rng.Intn(16)])
				wbuf = append(wbuf, "aeiou"[rng.Intn(5)])
			}
			if rng.Intn(2) == 0 {
				wbuf = append(wbuf, "ns"[rng.Intn(2)])
			}
			return string(wbuf)
		}
		return wikiVocab[zipf.Uint64()]
	}
	topic := wikiTopics[rng.Intn(len(wikiTopics))]
	para := 0
	for len(out) < n {
		// Occasionally start a new article: heading plus topic switch.
		if para%9 == 0 {
			topic = wikiTopics[rng.Intn(len(wikiTopics))]
			out = append(out, "\n== "...)
			out = append(out, topic...)
			out = append(out, " ==\n"...)
		}
		sentences := 3 + rng.Intn(5)
		for s := 0; s < sentences && len(out) < n; s++ {
			tpl := wikiTemplates[rng.Intn(len(wikiTemplates))]
			for i := 0; i < len(tpl); i++ {
				c := tpl[i]
				if c == '%' && i+1 < len(tpl) {
					i++
					switch tpl[i] {
					case 'T':
						if rng.Intn(4) == 0 {
							out = append(out, "[["...)
							out = append(out, topic...)
							out = append(out, "]]"...)
						} else {
							out = append(out, topic...)
						}
					case 'w':
						out = append(out, word()...)
					case 'y':
						out = append(out, fmt.Sprintf("%d", 1000+rng.Intn(1020))...)
					}
					continue
				}
				out = append(out, c)
			}
			out = append(out, ' ')
		}
		out = append(out, '\n')
		para++
	}
	return out[:n]
}

// canMessage is one periodic CAN bus message description.
type canMessage struct {
	id     uint16
	period uint32 // microseconds between frames
	dlc    uint8
	// signal behaviour per payload byte: 0 constant, 1 counter,
	// 2 slow sensor, 3 bitfield flags
	kind [8]uint8
	val  [8]uint8
}

// CAN returns n bytes of a synthetic automotive CAN log. Records are
// 16 bytes: u32 timestamp (µs), u16 CAN id, u8 DLC, u8 bus flags, and
// 8 payload bytes.
func CAN(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x0CA45EED))
	nMsg := 18 + rng.Intn(8)
	msgs := make([]canMessage, nMsg)
	for i := range msgs {
		m := &msgs[i]
		m.id = uint16(0x100 + rng.Intn(0x600))
		m.period = uint32(1024 * (1 + rng.Intn(100))) // ~1..100 ms, tick-quantized
		m.dlc = 8
		for b := 0; b < 8; b++ {
			switch k := rng.Intn(12); {
			case k < 5:
				m.kind[b] = 0 // constant
			case k < 8:
				m.kind[b] = 1 // counter
			case k < 10:
				m.kind[b] = 2 // sensor
			case k < 11:
				m.kind[b] = 3 // flags
			default:
				m.kind[b] = 4 // ADC
			}
			m.val[b] = uint8(rng.Intn(256))
		}
	}
	// next emission time per message.
	next := make([]uint64, nMsg)
	for i := range next {
		next[i] = uint64(rng.Intn(int(msgs[i].period)/64) * 64)
	}
	out := make([]byte, 0, n+16)
	var rec [16]byte
	for len(out) < n {
		// Find the message with the earliest next time.
		best := 0
		for i := 1; i < nMsg; i++ {
			if next[i] < next[best] {
				best = i
			}
		}
		m := &msgs[best]
		ts := next[best]
		next[best] += uint64(m.period)
		binary.LittleEndian.PutUint32(rec[0:], uint32(ts))
		binary.LittleEndian.PutUint16(rec[4:], m.id)
		rec[6] = m.dlc
		rec[7] = 0 // bus flags: almost always clean
		if rng.Intn(500) == 0 {
			rec[7] = 1 << uint(rng.Intn(3)) // rare error/RTR flag
		}
		for b := 0; b < 8; b++ {
			switch m.kind[b] {
			case 0: // constant
			case 1: // rolling counter
				m.val[b]++
			case 2: // slow sensor: random walk
				if rng.Intn(4) == 0 {
					m.val[b] += uint8(rng.Intn(3)) - 1
				}
			case 3: // flags: rarely toggle one bit
				if rng.Intn(64) == 0 {
					m.val[b] ^= 1 << uint(rng.Intn(8))
				}
			case 4: // noisy ADC channel: low bits churn every frame
				m.val[b] = m.val[b]&0xF0 | uint8(rng.Intn(16))
			}
			rec[8+b] = m.val[b]
		}
		out = append(out, rec[:]...)
	}
	return out[:n]
}

// Value vocabularies for the JSONish generator: API telemetry streams
// repeat the same key schema and a small value set in every record,
// which is exactly the redundancy a preset dictionary captures.
var jsonServices = []string{
	"compress-api", "ingest-gw", "edge-cache", "billing", "auth", "search",
}

var jsonPaths = []string{
	"/v1/compress", "/v1/decompress", "/v1/dicts", "/healthz", "/metrics",
	"/v2/objects", "/v2/objects/hot",
}

// JSONish returns n bytes of newline-delimited JSON-like telemetry
// records: a fixed key schema, a small value vocabulary and
// monotonically drifting numerics — the repetitive short-record class
// where preset-dictionary compression wins hardest (the dictionary
// carries the schema so even a single record compresses well).
func JSONish(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x150B5E55))
	out := make([]byte, 0, n+512)
	ts := int64(1700000000000) + rng.Int63n(1<<30)
	appendKV := func(key, val string, quote bool) {
		out = append(out, '"')
		out = append(out, key...)
		out = append(out, `":`...)
		if quote {
			out = append(out, '"')
			out = append(out, val...)
			out = append(out, '"')
		} else {
			out = append(out, val...)
		}
	}
	for len(out) < n {
		ts += int64(1 + rng.Intn(900))
		out = append(out, '{')
		appendKV("timestamp", fmt.Sprintf("%d", ts), false)
		out = append(out, ',')
		lvl := "info"
		if rng.Intn(20) == 0 {
			lvl = "error"
		} else if rng.Intn(8) == 0 {
			lvl = "warn"
		}
		appendKV("level", lvl, true)
		out = append(out, ',')
		appendKV("service", jsonServices[rng.Intn(len(jsonServices))], true)
		out = append(out, ',')
		appendKV("host", fmt.Sprintf("node-%02d", rng.Intn(24)), true)
		out = append(out, ',')
		appendKV("method", []string{"GET", "POST", "PUT"}[rng.Intn(3)], true)
		out = append(out, ',')
		appendKV("path", jsonPaths[rng.Intn(len(jsonPaths))], true)
		out = append(out, ',')
		appendKV("status", []string{"200", "200", "200", "204", "404", "429", "500"}[rng.Intn(7)], false)
		out = append(out, ',')
		appendKV("latency_ms", fmt.Sprintf("%d.%03d", rng.Intn(40), rng.Intn(1000)), false)
		out = append(out, ',')
		appendKV("bytes_out", fmt.Sprintf("%d", 64+rng.Intn(1<<16)), false)
		out = append(out, ',')
		appendKV("trace_id", fmt.Sprintf("%016x", rng.Uint64()), true)
		if rng.Intn(6) == 0 {
			out = append(out, ',')
			appendKV("cache", []string{"hit", "miss", "coalesced"}[rng.Intn(3)], true)
		}
		if lvl == "error" {
			out = append(out, ',')
			appendKV("error", "upstream timeout exceeded", true)
			out = append(out, ',')
			appendKV("retries", fmt.Sprintf("%d", rng.Intn(4)), false)
		}
		out = append(out, "}\n"...)
	}
	return out[:n]
}

// Random returns incompressible bytes — the adversarial case where LZSS
// output is bigger than its input.
func Random(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x7A11DA7A))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// Zeros returns the maximally compressible corpus.
func Zeros(n int, seed int64) []byte {
	return make([]byte, n)
}

// Bitstream returns n bytes resembling an FPGA configuration bitstream:
// frame-structured data where unused fabric regions are zero, used
// regions carry repeated LUT/routing init patterns, and a sprinkling of
// distinct frames is dense — the corpus for the decompression-driven
// reconfiguration use case of the paper's related work [10].
func Bitstream(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x0B175742))
	out := make([]byte, 0, n+512)
	// A handful of recurring "tile" patterns, as identical logic
	// columns configure identically.
	patterns := make([][]byte, 6)
	for i := range patterns {
		p := make([]byte, 64)
		rng.Read(p)
		patterns[i] = p
	}
	const frameBytes = 164 // Virtex-5 frame: 41 words of 32 bits
	frame := make([]byte, frameBytes)
	for len(out) < n {
		switch k := rng.Intn(10); {
		case k < 4: // unused region: zero frame
			for i := range frame {
				frame[i] = 0
			}
		case k < 9: // configured tile: repeated pattern with tweaks
			p := patterns[rng.Intn(len(patterns))]
			for i := range frame {
				frame[i] = p[i%len(p)]
			}
			if rng.Intn(3) == 0 {
				frame[rng.Intn(frameBytes)] ^= byte(1 << uint(rng.Intn(8)))
			}
		default: // dense frame (block RAM init etc.)
			rng.Read(frame)
		}
		out = append(out, frame...)
	}
	return out[:n]
}

// Mixed returns a corpus whose statistics shift abruptly between
// segments — text, binary telemetry, incompressible noise and zeros —
// the case where one Huffman table for the whole stream loses badly to
// per-segment tables.
func Mixed(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x3A17ED))
	out := make([]byte, 0, n+4096)
	gens := []Generator{Wiki, CAN, Random, Zeros, Bitstream}
	for len(out) < n {
		seg := 4096 + rng.Intn(32768)
		if len(out)+seg > n {
			seg = n - len(out)
		}
		g := gens[rng.Intn(len(gens))]
		out = append(out, g(seg, rng.Int63())...)
	}
	return out[:n]
}
