package workload

import (
	"bytes"
	"testing"

	"lzssfpga/internal/deflate"
	"lzssfpga/internal/lzss"
)

func ratioAt(t *testing.T, data []byte, p lzss.Params) float64 {
	t.Helper()
	cmds, _, err := lzss.Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	z, err := deflate.ZlibCompress(cmds, data, p.Window)
	if err != nil {
		t.Fatal(err)
	}
	return float64(len(data)) / float64(len(z))
}

func TestGeneratorsDeterministic(t *testing.T) {
	for name, g := range map[string]Generator{"wiki": Wiki, "can": CAN, "random": Random} {
		a := g(50000, 42)
		b := g(50000, 42)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: not deterministic", name)
		}
		c := g(50000, 43)
		if bytes.Equal(a, c) {
			t.Errorf("%s: seed ignored", name)
		}
	}
}

func TestGeneratorsExactSize(t *testing.T) {
	for name, g := range map[string]Generator{"wiki": Wiki, "can": CAN, "random": Random, "zeros": Zeros} {
		for _, n := range []int{0, 1, 15, 16, 17, 1000, 123457} {
			if got := len(g(n, 1)); got != n {
				t.Errorf("%s(%d) returned %d bytes", name, n, got)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"wiki", "Wiki", "x2e", "X2E", "can", "random", "zeros"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown corpus accepted")
	}
}

func TestWikiLooksLikeText(t *testing.T) {
	data := Wiki(100000, 7)
	var printable, spaces int
	for _, b := range data {
		if b >= 32 && b < 127 || b == '\n' {
			printable++
		}
		if b == ' ' {
			spaces++
		}
	}
	if float64(printable)/float64(len(data)) < 0.98 {
		t.Fatalf("wiki text only %.1f%% printable", 100*float64(printable)/float64(len(data)))
	}
	if spaces < len(data)/12 {
		t.Fatalf("wiki text has too few spaces (%d in %d)", spaces, len(data))
	}
	if !bytes.Contains(data, []byte("==")) {
		t.Fatal("wiki text has no headings")
	}
}

func TestWikiRatioNearPaper(t *testing.T) {
	// The paper's Table I reports ratio ≈1.68-1.69 for Wiki with the
	// speed-optimized hardware parameters (4KB dict, 15-bit hash, fixed
	// Huffman). The synthetic corpus must land in that neighbourhood.
	data := Wiki(1<<20, 11)
	r := ratioAt(t, data, lzss.HWSpeedParams())
	if r < 1.35 || r > 2.1 {
		t.Fatalf("wiki ratio %.3f too far from the paper's ~1.68", r)
	}
}

func TestCANRatioNearPaper(t *testing.T) {
	// Paper Table I: X2E ratio ≈ 1.7 at the same settings.
	data := CAN(1<<20, 11)
	r := ratioAt(t, data, lzss.HWSpeedParams())
	if r < 1.3 || r > 2.6 {
		t.Fatalf("CAN ratio %.3f too far from the paper's ~1.7", r)
	}
}

func TestCANRecordStructure(t *testing.T) {
	data := CAN(16*1000, 3)
	if len(data)%16 != 0 {
		t.Fatalf("length %d not a multiple of the 16-byte record", len(data))
	}
	// Timestamps must be non-decreasing (u32 little endian at offset 0).
	var prev uint32
	for i := 0; i+16 <= len(data); i += 16 {
		ts := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		if ts < prev {
			t.Fatalf("timestamp regression at record %d: %d < %d", i/16, ts, prev)
		}
		prev = ts
		dlc := data[i+6]
		if dlc != 8 {
			t.Fatalf("record %d: dlc %d", i/16, dlc)
		}
	}
}

func TestRandomIsIncompressible(t *testing.T) {
	data := Random(1<<18, 5)
	r := ratioAt(t, data, lzss.HWSpeedParams())
	if r > 1.02 {
		t.Fatalf("random corpus compressed %.3fx", r)
	}
}

func TestZerosHighlyCompressible(t *testing.T) {
	data := Zeros(1<<18, 0)
	r := ratioAt(t, data, lzss.HWSpeedParams())
	if r < 50 {
		t.Fatalf("zero corpus ratio only %.1f", r)
	}
}

func TestLargerDictImprovesWikiRatio(t *testing.T) {
	// The premise of Fig 2: bigger dictionaries help on Wiki text.
	data := Wiki(1<<20, 13)
	small := lzss.Params{Window: 1024, HashBits: 15, MaxChain: 4, Nice: 8, InsertLimit: 4}
	big := lzss.Params{Window: 16384, HashBits: 15, MaxChain: 4, Nice: 8, InsertLimit: 4}
	rs := ratioAt(t, data, small)
	rb := ratioAt(t, data, big)
	if rb <= rs {
		t.Fatalf("16K window ratio %.3f not better than 1K %.3f", rb, rs)
	}
}

func BenchmarkWiki1M(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		Wiki(1<<20, int64(i))
	}
}

func BenchmarkCAN1M(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		CAN(1<<20, int64(i))
	}
}

func TestBitstreamCompressible(t *testing.T) {
	data := Bitstream(1<<20, 2)
	r := ratioAt(t, data, lzss.HWSpeedParams())
	if r < 1.5 {
		t.Fatalf("bitstream ratio %.2f — config frames should compress well", r)
	}
	if len(data) != 1<<20 {
		t.Fatal("size wrong")
	}
	if !bytes.Equal(Bitstream(10000, 3), Bitstream(10000, 3)) {
		t.Fatal("not deterministic")
	}
}

func TestBitstreamByName(t *testing.T) {
	if _, err := ByName("bitstream"); err != nil {
		t.Fatal(err)
	}
}

func TestJSONishStructureAndRatio(t *testing.T) {
	data := JSONish(100000, 9)
	if !bytes.Equal(data, JSONish(100000, 9)) {
		t.Fatal("not deterministic")
	}
	if len(data) != 100000 {
		t.Fatalf("size %d", len(data))
	}
	// Records are newline-delimited objects over a fixed key schema.
	lines := bytes.Split(data, []byte("\n"))
	complete := 0
	for _, ln := range lines {
		if len(ln) == 0 {
			continue
		}
		if ln[0] == '{' && ln[len(ln)-1] == '}' {
			complete++
			if !bytes.Contains(ln, []byte(`"timestamp":`)) || !bytes.Contains(ln, []byte(`"service":`)) {
				t.Fatalf("record missing schema keys: %q", ln)
			}
		}
	}
	if complete < 100 {
		t.Fatalf("only %d complete records", complete)
	}
	// The repeated schema makes it compress well even at fast settings.
	if r := ratioAt(t, data, lzss.HWSpeedParams()); r < 2.0 {
		t.Fatalf("json ratio %.2f, want >= 2", r)
	}
	if _, err := ByName("json"); err != nil {
		t.Fatal(err)
	}
}
