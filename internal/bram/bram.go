// Package bram models the independently addressable dual-port block
// RAMs of a Virtex-5 FPGA — the resource the paper's whole architecture
// is built around. A BRAM has two ports; each port can perform one
// read or one write per clock cycle (true dual port), reads are
// synchronous (data appears the next cycle), and the package computes
// how many physical RAMB36 primitives a given geometry consumes.
package bram

import (
	"fmt"
)

// Port identifiers of a dual-port memory.
const (
	PortA = 0
	PortB = 1
)

// BRAM is a dual-port memory of depth words × width bits (width ≤ 64).
type BRAM struct {
	name  string
	depth int
	width uint
	data  []uint64
	mask  uint64

	// Per-cycle port bookkeeping: ops counts accesses in the current
	// cycle and trips the conflict check; totals accumulate for stats.
	ops    [2]int
	reads  [2]int64
	writes [2]int64
	// pending synchronous read data per port (valid after Tick).
	pending [2]uint64
	valid   [2]bool
	out     [2]uint64
}

// New builds a BRAM. Width must be in [1,64]; depth positive.
func New(name string, depth int, width uint) (*BRAM, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("bram %s: depth %d", name, depth)
	}
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("bram %s: width %d out of [1,64]", name, width)
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<width - 1
	}
	return &BRAM{name: name, depth: depth, width: width, data: make([]uint64, depth), mask: mask}, nil
}

// Name returns the instance name.
func (b *BRAM) Name() string { return b.name }

// Depth returns the word count.
func (b *BRAM) Depth() int { return b.depth }

// Width returns the word width in bits.
func (b *BRAM) Width() uint { return b.width }

func (b *BRAM) use(port int) {
	if port != PortA && port != PortB {
		panic(fmt.Sprintf("bram %s: invalid port %d", b.name, port))
	}
	b.ops[port]++
	if b.ops[port] > 1 {
		panic(fmt.Sprintf("bram %s: port %d used twice in one cycle", b.name, port))
	}
}

func (b *BRAM) checkAddr(addr int) {
	if addr < 0 || addr >= b.depth {
		panic(fmt.Sprintf("bram %s: address %d out of [0,%d)", b.name, addr, b.depth))
	}
}

// Read issues a synchronous read on port; the value is observable via
// Out(port) after the next Tick.
func (b *BRAM) Read(port, addr int) {
	b.use(port)
	b.checkAddr(addr)
	b.reads[port]++
	b.pending[port] = b.data[addr]
	b.valid[port] = true
}

// Write stores value (masked to width) at addr through port.
func (b *BRAM) Write(port, addr int, value uint64) {
	b.use(port)
	b.checkAddr(addr)
	b.writes[port]++
	b.data[addr] = value & b.mask
}

// Out returns the data latched by the most recent completed Read on
// port (i.e. a Read followed by a Tick).
func (b *BRAM) Out(port int) uint64 { return b.out[port] }

// Peek reads combinationally, bypassing ports — for checking and
// debugging only, never for modeled datapaths.
func (b *BRAM) Peek(addr int) uint64 {
	b.checkAddr(addr)
	return b.data[addr]
}

// Poke writes directly, bypassing ports — for test setup only.
func (b *BRAM) Poke(addr int, value uint64) {
	b.checkAddr(addr)
	b.data[addr] = value & b.mask
}

// Tick advances one clock: read data becomes visible, port-usage
// counters reset.
func (b *BRAM) Tick() {
	for p := 0; p < 2; p++ {
		if b.valid[p] {
			b.out[p] = b.pending[p]
			b.valid[p] = false
		}
		b.ops[p] = 0
	}
}

// Accesses reports the total reads and writes per port.
func (b *BRAM) Accesses() (reads, writes [2]int64) { return b.reads, b.writes }

// Clear zeroes the contents (contents only; counters survive).
func (b *BRAM) Clear() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// --- physical primitive accounting ---

// ramb36Aspects lists the depth×width configurations of one Virtex-5
// RAMB36 primitive (36 Kb true-dual-port block, UG190 table 4-4).
var ramb36Aspects = [][2]int{
	{32768, 1}, {16384, 2}, {8192, 4}, {4096, 9}, {2048, 18}, {1024, 36},
}

// Blocks36 returns the number of RAMB36 primitives needed to implement
// a depth×width memory, choosing the best aspect ratio (the packing an
// FPGA toolchain performs).
func Blocks36(depth int, width uint) int {
	if depth <= 0 || width == 0 {
		return 0
	}
	best := 0
	for _, a := range ramb36Aspects {
		d, w := a[0], a[1]
		n := ceilDiv(depth, d) * ceilDiv(int(width), w)
		if best == 0 || n < best {
			best = n
		}
	}
	return best
}

// Blocks36Of returns the primitive count for an instantiated BRAM.
func Blocks36Of(b *BRAM) int { return Blocks36(b.depth, b.width) }

// KbitsOf returns the raw storage of the memory in kilobits, the
// quantity Fig-style BRAM budgets are discussed in.
func KbitsOf(depth int, width uint) float64 {
	return float64(depth) * float64(width) / 1024
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ramb18Aspects lists the configurations of a RAMB18 half-block.
var ramb18Aspects = [][2]int{
	{16384, 1}, {8192, 2}, {4096, 4}, {2048, 9}, {1024, 18},
}

// Blocks18 returns how many RAMB18 half-primitives a depth×width memory
// needs — small tables often fit a half block, halving the budget
// Blocks36 would report.
func Blocks18(depth int, width uint) int {
	if depth <= 0 || width == 0 {
		return 0
	}
	best := 0
	for _, a := range ramb18Aspects {
		d, w := a[0], a[1]
		n := ceilDiv(depth, d) * ceilDiv(int(width), w)
		if best == 0 || n < best {
			best = n
		}
	}
	return best
}
