package bram

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, name string, depth int, width uint) *BRAM {
	t.Helper()
	b, err := New(name, depth, width)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0, 8); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := New("x", 16, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New("x", 16, 65); err == nil {
		t.Error("width 65 accepted")
	}
	b := mustNew(t, "ok", 16, 64)
	if b.Depth() != 16 || b.Width() != 64 || b.Name() != "ok" {
		t.Error("accessors wrong")
	}
}

func TestSynchronousReadLatency(t *testing.T) {
	b := mustNew(t, "m", 16, 8)
	b.Poke(3, 0xAB)
	b.Read(PortA, 3)
	// Before Tick the read data must not be visible.
	if b.Out(PortA) == 0xAB {
		t.Fatal("read data visible combinationally")
	}
	b.Tick()
	if b.Out(PortA) != 0xAB {
		t.Fatalf("Out = %x, want ab", b.Out(PortA))
	}
	// Out holds its value across idle cycles.
	b.Tick()
	if b.Out(PortA) != 0xAB {
		t.Fatal("Out not held")
	}
}

func TestDualPortSameCycle(t *testing.T) {
	b := mustNew(t, "m", 16, 16)
	b.Poke(1, 0x1111)
	// Port A reads while port B writes elsewhere — legal on dual-port.
	b.Read(PortA, 1)
	b.Write(PortB, 2, 0x2222)
	b.Tick()
	if b.Out(PortA) != 0x1111 {
		t.Fatal("port A read failed")
	}
	if b.Peek(2) != 0x2222 {
		t.Fatal("port B write failed")
	}
}

func TestPortConflictPanics(t *testing.T) {
	b := mustNew(t, "m", 16, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("double use of one port in a cycle must panic")
		}
	}()
	b.Read(PortA, 0)
	b.Read(PortA, 1)
}

func TestWidthMasking(t *testing.T) {
	b := mustNew(t, "m", 4, 5)
	b.Write(PortA, 0, 0xFF)
	b.Tick()
	if b.Peek(0) != 0x1F {
		t.Fatalf("got %x, want 1f (5-bit mask)", b.Peek(0))
	}
}

func TestAddrOutOfRangePanics(t *testing.T) {
	b := mustNew(t, "m", 4, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address must panic")
		}
	}()
	b.Read(PortA, 4)
}

func TestAccessCounters(t *testing.T) {
	b := mustNew(t, "m", 8, 8)
	b.Read(PortA, 0)
	b.Tick()
	b.Write(PortB, 1, 9)
	b.Tick()
	b.Read(PortB, 1)
	b.Tick()
	r, w := b.Accesses()
	if r[PortA] != 1 || r[PortB] != 1 || w[PortB] != 1 || w[PortA] != 0 {
		t.Fatalf("counters r=%v w=%v", r, w)
	}
}

func TestClear(t *testing.T) {
	b := mustNew(t, "m", 4, 8)
	b.Poke(2, 7)
	b.Clear()
	if b.Peek(2) != 0 {
		t.Fatal("Clear did not zero")
	}
}

func TestBlocks36KnownGeometries(t *testing.T) {
	cases := []struct {
		depth int
		width uint
		want  int
	}{
		{1024, 36, 1},
		{1024, 32, 1},
		{2048, 18, 1},
		{32768, 1, 1},
		{4096, 9, 1},
		{4096, 18, 2},
		{8192, 32, 8},
		{512, 8, 1},     // under-uses one primitive
		{32768, 17, 16}, // 15-bit-hash head table: 8 deep x 2 wide in 4096x9 aspect
		{0, 8, 0},
		{16, 0, 0},
	}
	for _, c := range cases {
		if got := Blocks36(c.depth, c.width); got != c.want {
			t.Errorf("Blocks36(%d,%d) = %d, want %d", c.depth, c.width, got, c.want)
		}
	}
}

func TestBlocks36Monotone(t *testing.T) {
	f := func(d uint16, w uint8) bool {
		depth := int(d)%16384 + 1
		width := uint(w)%36 + 1
		n := Blocks36(depth, width)
		if n < 1 {
			return false
		}
		// Capacity must cover the request.
		return float64(n)*36*1024 >= float64(depth)*float64(width)*0.999/8 // generous: aspect-limited packing can waste, but never undershoot raw bits/8? keep sanity loose
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlocks36OfAndKbits(t *testing.T) {
	b := mustNew(t, "m", 1024, 36)
	if Blocks36Of(b) != 1 {
		t.Fatal("1K×36 must be one RAMB36")
	}
	if KbitsOf(1024, 36) != 36 {
		t.Fatalf("KbitsOf = %v", KbitsOf(1024, 36))
	}
}

func TestReadWriteSamePortSameCyclePanics(t *testing.T) {
	b := mustNew(t, "m", 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("read+write on one port in one cycle must panic")
		}
	}()
	b.Read(PortA, 0)
	b.Write(PortA, 1, 1)
}

func TestBlocks18(t *testing.T) {
	cases := []struct {
		depth int
		width uint
		want  int
	}{
		{1024, 18, 1},
		{512, 8, 1},
		{2048, 18, 2},
		{16384, 1, 1},
		{0, 8, 0},
	}
	for _, c := range cases {
		if got := Blocks18(c.depth, c.width); got != c.want {
			t.Errorf("Blocks18(%d,%d) = %d, want %d", c.depth, c.width, got, c.want)
		}
	}
	// A memory never needs more than 2x the half-blocks of full blocks.
	for _, g := range [][2]int{{1024, 32}, {4096, 12}, {32768, 17}} {
		b36 := Blocks36(g[0], uint(g[1]))
		b18 := Blocks18(g[0], uint(g[1]))
		if b18 > 2*b36 {
			t.Errorf("geometry %v: %d half-blocks vs %d full", g, b18, b36)
		}
	}
}
