package estimator

import (
	"runtime"
	"sync"

	"lzssfpga/internal/core"
)

// Parallelism bounds how many design points are evaluated concurrently.
// Each evaluation is an independent model run over the same (shared,
// read-only) corpus, so the sweep scales close to linearly with cores.
var Parallelism = runtime.GOMAXPROCS(0)

// EvaluateAll runs every configuration over data concurrently and
// returns the points in input order. The first error wins; remaining
// work is still drained (model runs have no side effects to cancel).
func EvaluateAll(cfgs []core.Config, data []byte) ([]Point, error) {
	points := make([]Point, len(cfgs))
	errs := make([]error, len(cfgs))

	workers := Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				points[i], errs[i] = Evaluate(cfgs[i], data)
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}
