// Package estimator reimplements the paper's design-space-exploration
// tool [17]: it runs the cycle-accurate hardware model over parameter
// series and reports compression ratio, throughput, cycle distribution
// and block RAM cost — the machinery behind Figs 2-5 and Table III.
package estimator

import (
	"fmt"
	"strings"

	"lzssfpga/internal/core"
	"lzssfpga/internal/token"
)

// Point is one evaluated design point.
type Point struct {
	// Window and HashBits identify the geometry.
	Window   int
	HashBits uint
	// Level is the run-time parameter preset ("min", "max" or "").
	Level string
	// InputBytes / CompressedBytes give the ratio.
	InputBytes      int64
	CompressedBytes int64
	// MBps is the modeled throughput at the configured clock.
	MBps float64
	// CyclesPerByte is the cycle density.
	CyclesPerByte float64
	// Blocks36 is the block RAM cost.
	Blocks36 int
	// Stats is the full cycle ledger.
	Stats core.CycleStats
}

// Ratio returns input/compressed.
func (p Point) Ratio() float64 {
	if p.CompressedBytes == 0 {
		return 0
	}
	return float64(p.InputBytes) / float64(p.CompressedBytes)
}

// Evaluate runs one configuration over data.
func Evaluate(cfg core.Config, data []byte) (Point, error) {
	comp, err := core.New(cfg)
	if err != nil {
		return Point{}, err
	}
	res, err := comp.Compress(data)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Window:          cfg.Match.Window,
		HashBits:        cfg.Match.HashBits,
		InputBytes:      res.Stats.InputBytes,
		CompressedBytes: res.Stats.OutputBytes,
		MBps:            res.Stats.ThroughputMBps(cfg.ClockHz),
		CyclesPerByte:   res.Stats.CyclesPerByte(),
		Blocks36:        comp.TotalBlocks36(),
		Stats:           res.Stats,
	}, nil
}

// ApplyLevel sets the run-time matching parameters for the paper's
// "min" and "max" compression levels (Fig 4): min is the Table I
// speed setting; max raises the matching-iteration limit, searches to
// the full match length and updates the hash table for every byte.
func ApplyLevel(cfg *core.Config, level string) error {
	switch level {
	case "", "min":
		cfg.Match.MaxChain = 4
		cfg.Match.Nice = 8
		cfg.Match.InsertLimit = 4
	case "max":
		cfg.Match.MaxChain = 128
		cfg.Match.Nice = token.MaxMatch
		cfg.Match.InsertLimit = token.MaxMatch
	default:
		return fmt.Errorf("estimator: unknown level %q (want min or max)", level)
	}
	return nil
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	X      []int // dictionary sizes
	Points []Point
}

// sweep evaluates cfg over the given dictionary sizes, running the
// independent design points in parallel (EvaluateAll).
func sweep(base core.Config, windows []int, data []byte) (Series, error) {
	cfgs := make([]core.Config, len(windows))
	for i, w := range windows {
		cfgs[i] = base
		cfgs[i].Match.Window = w
	}
	points, err := EvaluateAll(cfgs, data)
	if err != nil {
		return Series{}, err
	}
	return Series{X: windows, Points: points}, nil
}

// Fig2Windows / Fig3Windows / Fig2Hashes are the axes the paper sweeps.
var (
	Fig2Windows = []int{1024, 2048, 4096, 8192, 16384}
	Fig3Windows = []int{2048, 4096, 8192, 16384}
	Fig2Hashes  = []uint{9, 11, 13, 15}
)

// Fig2 reproduces "Compressed size of a 100MB Wiki fragment" —
// compressed size vs dictionary size, one series per hash bit count.
func Fig2(data []byte) ([]Series, error) {
	out := make([]Series, 0, len(Fig2Hashes))
	for _, h := range Fig2Hashes {
		cfg := core.DefaultConfig()
		cfg.Match.HashBits = h
		s, err := sweep(cfg, Fig2Windows, data)
		if err != nil {
			return nil, err
		}
		s.Label = fmt.Sprintf("%d bits", h)
		out = append(out, s)
	}
	return out, nil
}

// Fig3 reproduces "Compression speed (MB/s)" — throughput vs dictionary
// size, one series per hash bit count.
func Fig3(data []byte) ([]Series, error) {
	out := make([]Series, 0, len(Fig2Hashes))
	for _, h := range Fig2Hashes {
		cfg := core.DefaultConfig()
		cfg.Match.HashBits = h
		s, err := sweep(cfg, Fig3Windows, data)
		if err != nil {
			return nil, err
		}
		s.Label = fmt.Sprintf("%d bits", h)
		out = append(out, s)
	}
	return out, nil
}

// Fig4 reproduces "Compressed size and speed for min/max compression
// levels and 2 hash size options": four series (9/15 bits × min/max)
// over the Fig 2 dictionary range.
func Fig4(data []byte) ([]Series, error) {
	var out []Series
	for _, h := range []uint{9, 15} {
		for _, level := range []string{"min", "max"} {
			cfg := core.DefaultConfig()
			cfg.Match.HashBits = h
			if err := ApplyLevel(&cfg, level); err != nil {
				return nil, err
			}
			s, err := sweep(cfg, Fig2Windows, data)
			if err != nil {
				return nil, err
			}
			s.Label = fmt.Sprintf("%d bits;%s", h, level)
			for i := range s.Points {
				s.Points[i].Level = level
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// AblationRow is one configuration of Table III, evaluated at the two
// window sizes the paper uses.
type AblationRow struct {
	Name   string
	MBps4K float64
	MBps32 float64
}

// TableIII reproduces "Compression speed without optimizations": the
// presented design, then each of the three optimizations disabled in
// turn, then all of them disabled.
func TableIII(data []byte) ([]AblationRow, error) {
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"A) Original (15-bit hash; 32-bit data)", func(c *core.Config) {}},
		{"B) 8-bit data bus as in [11]", func(c *core.Config) { c.DataBusBytes = 1 }},
		{"C) Disabled hash prefetching", func(c *core.Config) { c.HashPrefetch = false }},
		{"D) Reduced generation bits to 0", func(c *core.Config) { c.GenerationBits = 0 }},
		{"Disabled all 3 optimizations over [11]", func(c *core.Config) {
			c.DataBusBytes = 1
			c.HashPrefetch = false
			c.GenerationBits = 0
			c.HeadSplit = 1 // [11] has no M-way split rotation either
		}},
	}
	windows := []int{4096, 32768}
	cfgs := make([]core.Config, 0, len(variants)*len(windows))
	for _, v := range variants {
		for _, w := range windows {
			cfg := core.DefaultConfig()
			cfg.Match.Window = w
			v.mut(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	points, err := EvaluateAll(cfgs, data)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, len(variants))
	for i, v := range variants {
		rows = append(rows, AblationRow{
			Name:   v.name,
			MBps4K: points[2*i].MBps,
			MBps32: points[2*i+1].MBps,
		})
	}
	return rows, nil
}

// --- report rendering ---

func fmtSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// RenderSizeTable prints a Fig 2/4-style compressed-size grid.
func RenderSizeTable(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s", title, "dictionary:")
	for _, w := range series[0].X {
		fmt.Fprintf(&b, "%10s", fmtSize(w))
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-14s", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%9.2fM", float64(p.CompressedBytes)/1e6)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderSpeedTable prints a Fig 3/4-style throughput grid.
func RenderSpeedTable(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s", title, "dictionary:")
	for _, w := range series[0].X {
		fmt.Fprintf(&b, "%10s", fmtSize(w))
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-14s", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%10.1f", p.MBps)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTableIII prints the ablation table.
func RenderTableIII(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %12s %12s\n", "Configuration / window size", "4KB", "32KB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s %7.1f MB/s %7.1f MB/s\n", r.Name, r.MBps4K, r.MBps32)
	}
	return b.String()
}
