package estimator

import (
	"strings"
	"testing"

	"lzssfpga/internal/core"
	"lzssfpga/internal/workload"
)

// One shared corpus: the figures run 20+ model passes, so keep it small
// but large enough for the trends to be stable.
var figDataCache []byte

func figData(t *testing.T) []byte {
	t.Helper()
	if figDataCache == nil {
		figDataCache = workload.Wiki(1<<20, 17)
	}
	return figDataCache
}

func TestEvaluateBasics(t *testing.T) {
	p, err := Evaluate(core.DefaultConfig(), figData(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.Ratio() < 1.2 {
		t.Fatalf("ratio %.2f too low on wiki", p.Ratio())
	}
	if p.MBps <= 0 || p.CyclesPerByte <= 0 || p.Blocks36 <= 0 {
		t.Fatalf("implausible point: %+v", p)
	}
	if p.Window != 4096 || p.HashBits != 15 {
		t.Fatal("geometry not recorded")
	}
}

func TestEvaluateRejectsBadConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Match.MaxChain = 0
	if _, err := Evaluate(cfg, []byte("x")); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestApplyLevel(t *testing.T) {
	cfg := core.DefaultConfig()
	if err := ApplyLevel(&cfg, "max"); err != nil {
		t.Fatal(err)
	}
	if cfg.Match.MaxChain <= 4 || cfg.Match.Nice != 258 {
		t.Fatalf("max level not applied: %+v", cfg.Match)
	}
	if err := ApplyLevel(&cfg, "bogus"); err == nil {
		t.Fatal("unknown level accepted")
	}
	if err := ApplyLevel(&cfg, ""); err != nil {
		t.Fatal("empty level should mean min")
	}
}

func TestFig2Shape(t *testing.T) {
	series, err := Fig2(figData(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig2Hashes) {
		t.Fatalf("want %d series", len(Fig2Hashes))
	}
	for _, s := range series {
		// Paper: "increasing the dictionary size improves the
		// compression ratio" — compressed size must not grow.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].CompressedBytes > s.Points[i-1].CompressedBytes {
				t.Errorf("series %s: size grew from %dK to %dK dictionary",
					s.Label, s.X[i-1]>>10, s.X[i]>>10)
			}
		}
	}
	// "The improvement is more significant for larger hash sizes":
	// the 15-bit curve must drop more (absolutely) than the 9-bit one.
	drop := func(s Series) int64 {
		return s.Points[0].CompressedBytes - s.Points[len(s.Points)-1].CompressedBytes
	}
	if drop(series[len(series)-1]) <= drop(series[0]) {
		t.Errorf("15-bit improvement %d not larger than 9-bit %d",
			drop(series[len(series)-1]), drop(series[0]))
	}
}

func TestFig3Shape(t *testing.T) {
	series, err := Fig3(figData(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: larger hash ⇒ faster (fewer collisions); at equal windows
	// the 15-bit series must beat the 9-bit one.
	s9, s15 := series[0], series[len(series)-1]
	for i := range s9.Points {
		if s15.Points[i].MBps <= s9.Points[i].MBps {
			t.Errorf("window %dK: 15-bit %.1f MB/s not faster than 9-bit %.1f",
				s9.X[i]>>10, s15.Points[i].MBps, s9.Points[i].MBps)
		}
	}
	// Paper: "increasing the dictionary size slightly slows down the
	// compression" — at 15 bits the 16K window is slower than the 2K.
	pts := s15.Points
	if pts[len(pts)-1].MBps >= pts[0].MBps {
		t.Errorf("15-bit: 16K window %.1f MB/s not slower than 2K %.1f",
			pts[len(pts)-1].MBps, pts[0].MBps)
	}
}

func TestFig4Shape(t *testing.T) {
	series, err := Fig4(figData(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("want 4 series (9/15 bits x min/max), got %d", len(series))
	}
	bySeries := map[string]Series{}
	for _, s := range series {
		bySeries[s.Label] = s
	}
	min15, max15 := bySeries["15 bits;min"], bySeries["15 bits;max"]
	last := len(min15.Points) - 1
	// Max level compresses better...
	if max15.Points[last].CompressedBytes >= min15.Points[last].CompressedBytes {
		t.Error("max level must compress better than min")
	}
	// ...but is much slower (paper: "20% better at a cost of 82%
	// performance decrease").
	slowdown := 1 - max15.Points[last].MBps/min15.Points[last].MBps
	if slowdown < 0.4 {
		t.Errorf("max level only %.0f%% slower; paper reports ~82%%", 100*slowdown)
	}
	improvement := 1 - float64(max15.Points[last].CompressedBytes)/float64(min15.Points[last].CompressedBytes)
	if improvement < 0.05 {
		t.Errorf("max level only improves size by %.1f%%; paper reports ~20%%", 100*improvement)
	}
}

func TestTableIIIShape(t *testing.T) {
	rows, err := TableIII(figData(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table III has 5 rows, got %d", len(rows))
	}
	orig := rows[0]
	// Every ablation must cost throughput at 4KB.
	for _, r := range rows[1:] {
		if r.MBps4K >= orig.MBps4K {
			t.Errorf("%s: %.1f MB/s not slower than original %.1f at 4KB", r.Name, r.MBps4K, orig.MBps4K)
		}
	}
	// All-off must be the slowest of the ablations at 4KB.
	allOff := rows[len(rows)-1]
	for _, r := range rows[:len(rows)-1] {
		if allOff.MBps4K >= r.MBps4K {
			t.Errorf("all-off %.1f MB/s not slower than %s %.1f", allOff.MBps4K, r.Name, r.MBps4K)
		}
	}
	// Paper: generation bits matter more for small windows — the k=0
	// relative loss at 4KB exceeds that at 32KB.
	genRow := rows[3]
	loss4 := 1 - genRow.MBps4K/orig.MBps4K
	loss32 := 1 - genRow.MBps32/orig.MBps32
	if loss4 <= loss32 {
		t.Errorf("k=0 loss at 4KB (%.2f) not bigger than at 32KB (%.2f)", loss4, loss32)
	}
	// Paper: overall speedup of the optimizations is 2.2x-4.8x.
	gain4 := orig.MBps4K / allOff.MBps4K
	gain32 := orig.MBps32 / allOff.MBps32
	if gain4 < 1.5 || gain4 > 8 || gain32 < 1.2 || gain32 > 8 {
		t.Errorf("optimization gains %.1fx/%.1fx outside the paper's 2.2-4.8x neighbourhood", gain4, gain32)
	}
}

func TestRenderers(t *testing.T) {
	series, err := Fig3(workload.Wiki(200_000, 3))
	if err != nil {
		t.Fatal(err)
	}
	sizeTab := RenderSizeTable("fig", series)
	speedTab := RenderSpeedTable("fig", series)
	for _, out := range []string{sizeTab, speedTab} {
		if !strings.Contains(out, "2K") || !strings.Contains(out, "16K") {
			t.Fatalf("rendered table missing window labels:\n%s", out)
		}
		if !strings.Contains(out, "9 bits") {
			t.Fatalf("rendered table missing series label:\n%s", out)
		}
	}
	rows, err := TableIII(workload.Wiki(200_000, 3))
	if err != nil {
		t.Fatal(err)
	}
	tab := RenderTableIII(rows)
	if !strings.Contains(tab, "8-bit data bus") || !strings.Contains(tab, "MB/s") {
		t.Fatalf("Table III rendering incomplete:\n%s", tab)
	}
}

func TestFmtSize(t *testing.T) {
	cases := map[int]string{1024: "1K", 16384: "16K", 1 << 20: "1M", 999: "999"}
	for in, want := range cases {
		if got := fmtSize(in); got != want {
			t.Errorf("fmtSize(%d) = %s, want %s", in, got, want)
		}
	}
}

func TestEvaluateAllMatchesSequential(t *testing.T) {
	data := workload.Wiki(300_000, 19)
	var cfgs []core.Config
	for _, w := range []int{1024, 4096, 16384} {
		for _, h := range []uint{9, 15} {
			cfg := core.DefaultConfig()
			cfg.Match.Window = w
			cfg.Match.HashBits = h
			cfgs = append(cfgs, cfg)
		}
	}
	par, err := EvaluateAll(cfgs, data)
	if err != nil {
		t.Fatal(err)
	}
	old := Parallelism
	Parallelism = 1
	defer func() { Parallelism = old }()
	seq, err := EvaluateAll(cfgs, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if par[i].CompressedBytes != seq[i].CompressedBytes ||
			par[i].Stats.TotalCycles() != seq[i].Stats.TotalCycles() {
			t.Fatalf("point %d: parallel and sequential runs differ", i)
		}
	}
}

func TestEvaluateAllPropagatesError(t *testing.T) {
	good := core.DefaultConfig()
	bad := core.DefaultConfig()
	bad.Match.Window = 999
	if _, err := EvaluateAll([]core.Config{good, bad, good}, []byte("xy")); err == nil {
		t.Fatal("bad config not reported")
	}
}

func TestEvaluateAllEmpty(t *testing.T) {
	pts, err := EvaluateAll(nil, []byte("x"))
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty input: %v %d", err, len(pts))
	}
}

func TestExploreAndPareto(t *testing.T) {
	data := workload.Wiki(300_000, 22)
	grid := GridSpec{Windows: []int{1024, 4096, 16384}, HashBits: []uint{9, 15}, Levels: []string{"min", "max"}}
	points, err := Explore(data, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != grid.Size() {
		t.Fatalf("got %d points, want %d", len(points), grid.Size())
	}
	front := ParetoFront(points)
	if len(front) == 0 || len(front) > len(points) {
		t.Fatalf("front size %d implausible", len(front))
	}
	// No point on the front may dominate another front member.
	for i, p := range front {
		for j, q := range front {
			if i != j && dominates(p, q) {
				t.Fatalf("front member %d dominates member %d", i, j)
			}
		}
	}
	// Every non-front point must be dominated by some front member.
	onFront := func(p Point) bool {
		for _, q := range front {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, p := range points {
		if onFront(p) {
			continue
		}
		dominated := false
		for _, q := range front {
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("off-front point (%d,%d,%s) not dominated", p.Window, p.HashBits, p.Level)
		}
	}
	// Front is sorted by descending throughput.
	for i := 1; i < len(front); i++ {
		if front[i].MBps > front[i-1].MBps {
			t.Fatal("front not sorted by MB/s")
		}
	}
}

func TestRenderPoints(t *testing.T) {
	p := Point{Window: 4096, HashBits: 15, Level: "min", InputBytes: 100, CompressedBytes: 50, MBps: 49.5, CyclesPerByte: 2.0, Blocks36: 21}
	tab := RenderPoints([]Point{p}, false)
	if !strings.Contains(tab, "4096") || !strings.Contains(tab, "49.5") {
		t.Fatalf("table rendering wrong:\n%s", tab)
	}
	csv := RenderPoints([]Point{p}, true)
	if !strings.Contains(csv, "window,hash_bits") || !strings.Contains(csv, "4096,15,min,2.0000,49.50") {
		t.Fatalf("csv rendering wrong:\n%s", csv)
	}
}
