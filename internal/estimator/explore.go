package estimator

import (
	"fmt"
	"sort"
	"strings"

	"lzssfpga/internal/core"
)

// GridSpec spans the design space the explorer enumerates.
type GridSpec struct {
	Windows  []int
	HashBits []uint
	Levels   []string
}

// DefaultGrid covers the ranges the paper's evaluation sweeps.
func DefaultGrid() GridSpec {
	return GridSpec{
		Windows:  []int{1024, 2048, 4096, 8192, 16384, 32768},
		HashBits: []uint{9, 11, 13, 15},
		Levels:   []string{"min", "max"},
	}
}

// Size is the number of design points in the grid.
func (g GridSpec) Size() int { return len(g.Windows) * len(g.HashBits) * len(g.Levels) }

// Explore evaluates every grid point (in parallel) over data.
func Explore(data []byte, grid GridSpec) ([]Point, error) {
	cfgs := make([]core.Config, 0, grid.Size())
	var levels []string
	for _, w := range grid.Windows {
		for _, h := range grid.HashBits {
			for _, lvl := range grid.Levels {
				cfg := core.DefaultConfig()
				cfg.Match.Window = w
				cfg.Match.HashBits = h
				if err := ApplyLevel(&cfg, lvl); err != nil {
					return nil, err
				}
				cfgs = append(cfgs, cfg)
				levels = append(levels, lvl)
			}
		}
	}
	points, err := EvaluateAll(cfgs, data)
	if err != nil {
		return nil, err
	}
	for i := range points {
		points[i].Level = levels[i]
	}
	return points, nil
}

// dominates reports whether a is at least as good as b on every
// objective (ratio ↑, throughput ↑, block RAM ↓) and strictly better on
// at least one.
func dominates(a, b Point) bool {
	ge := a.Ratio() >= b.Ratio() && a.MBps >= b.MBps && a.Blocks36 <= b.Blocks36
	gt := a.Ratio() > b.Ratio() || a.MBps > b.MBps || a.Blocks36 < b.Blocks36
	return ge && gt
}

// ParetoFront filters the points down to the non-dominated set — the
// configurations a designer would actually choose among — sorted by
// descending throughput.
func ParetoFront(points []Point) []Point {
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].MBps != front[j].MBps {
			return front[i].MBps > front[j].MBps
		}
		return front[i].Ratio() > front[j].Ratio()
	})
	return front
}

// RenderPoints prints points as an aligned table (or CSV).
func RenderPoints(points []Point, csv bool) string {
	var b strings.Builder
	if csv {
		b.WriteString("window,hash_bits,level,ratio,mbps,cycles_per_byte,ramb36\n")
		for _, p := range points {
			fmt.Fprintf(&b, "%d,%d,%s,%.4f,%.2f,%.4f,%d\n",
				p.Window, p.HashBits, p.Level, p.Ratio(), p.MBps, p.CyclesPerByte, p.Blocks36)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s %-6s %-6s %8s %8s %8s %8s\n",
		"window", "hash", "level", "ratio", "MB/s", "cyc/B", "RAMB36")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8d %-6d %-6s %8.3f %8.1f %8.3f %8d\n",
			p.Window, p.HashBits, p.Level, p.Ratio(), p.MBps, p.CyclesPerByte, p.Blocks36)
	}
	return b.String()
}
