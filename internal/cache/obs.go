package cache

import (
	"sync/atomic"

	"lzssfpga/internal/obs"
)

// cacheSink holds the registry handles of the engine_cache_* family.
// Counters are bumped live on the serving path; the bytes/entries
// gauges are refreshed from the package-wide occupancy atomics at
// scrape time (summed across every Cache in the process, matching the
// family's process-wide semantics).
type cacheSink struct {
	hits           *obs.Counter
	misses         *obs.Counter
	coalesced      *obs.Counter
	evictions      *obs.Counter
	verifyFailures *obs.Counter
}

var cacheObs atomic.Pointer[cacheSink]

// liveBytes/liveEntries aggregate occupancy across all Cache instances
// (a process can hold one per server plus one per cluster front).
var (
	liveBytes   atomic.Int64
	liveEntries atomic.Int64
)

// SetObservability wires the package's engine_cache_* metrics into reg
// (nil disables).
func SetObservability(reg *obs.Registry) {
	if reg == nil {
		cacheObs.Store(nil)
		return
	}
	k := &cacheSink{
		hits:           reg.Counter(obs.EngineCacheHits),
		misses:         reg.Counter(obs.EngineCacheMisses),
		coalesced:      reg.Counter(obs.EngineCacheCoalesced),
		evictions:      reg.Counter(obs.EngineCacheEvictions),
		verifyFailures: reg.Counter(obs.EngineCacheVerifyFailures),
	}
	bytesG := reg.Gauge(obs.EngineCacheBytes)
	entriesG := reg.Gauge(obs.EngineCacheEntries)
	reg.OnScrape("cache_occupancy", func() {
		bytesG.Set(float64(liveBytes.Load()))
		entriesG.Set(float64(liveEntries.Load()))
	})
	cacheObs.Store(k)
}
