package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustGet(t *testing.T, c *Cache, key Key, compute func() ([]byte, error)) ([]byte, bool) {
	t.Helper()
	out, hit, err := c.GetOrCompute(context.Background(), key, compute, nil)
	if err != nil {
		t.Fatalf("GetOrCompute: %v", err)
	}
	return out, hit
}

func TestCacheHitMiss(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 4})
	key := KeyFor([]byte("hello"), 1, "")
	var computes atomic.Int64
	compute := func() ([]byte, error) {
		computes.Add(1)
		return []byte("compressed"), nil
	}
	out, hit := mustGet(t, c, key, compute)
	if hit || string(out) != "compressed" {
		t.Fatalf("first call: hit=%v out=%q", hit, out)
	}
	out, hit = mustGet(t, c, key, compute)
	if !hit || string(out) != "compressed" {
		t.Fatalf("second call: hit=%v out=%q", hit, out)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len("compressed")) {
		t.Fatalf("stats: %+v", st)
	}
}

// Distinct params fingerprints and dictionary IDs address distinct
// entries even for identical payloads — the correctness-by-construction
// invariant.
func TestCacheKeyAddressing(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 4})
	payload := []byte("same payload")
	keys := []Key{
		KeyFor(payload, 1, ""),
		KeyFor(payload, 2, ""),
		KeyFor(payload, 1, "wiki"),
		KeyFor(payload, 1, "can"),
	}
	for i, k := range keys {
		want := []byte(fmt.Sprintf("stream-%d", i))
		out, hit := mustGet(t, c, k, func() ([]byte, error) { return want, nil })
		if hit || !bytes.Equal(out, want) {
			t.Fatalf("key %d: hit=%v out=%q", i, hit, out)
		}
	}
	for i, k := range keys {
		want := []byte(fmt.Sprintf("stream-%d", i))
		out, hit := mustGet(t, c, k, func() ([]byte, error) { return nil, errors.New("must not recompute") })
		if !hit || !bytes.Equal(out, want) {
			t.Fatalf("key %d readback: hit=%v out=%q want %q", i, hit, out, want)
		}
	}
	if st := c.Stats(); st.Entries != int64(len(keys)) {
		t.Fatalf("entries = %d, want %d", st.Entries, len(keys))
	}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	// One shard so the LRU order is fully observable: budget fits four
	// 100-byte values.
	c := New(Config{MaxBytes: 400, Shards: 1})
	val := bytes.Repeat([]byte("x"), 100)
	keyN := func(i int) Key { return KeyFor([]byte{byte(i)}, 0, "") }
	for i := 0; i < 4; i++ {
		mustGet(t, c, keyN(i), func() ([]byte, error) { return val, nil })
	}
	if st := c.Stats(); st.Entries != 4 || st.Bytes != 400 || st.Evictions != 0 {
		t.Fatalf("pre-eviction stats: %+v", st)
	}
	// Touch key 0 so key 1 is now the coldest, then overflow.
	if _, hit := mustGet(t, c, keyN(0), nil); !hit {
		t.Fatal("key 0 should hit")
	}
	mustGet(t, c, keyN(4), func() ([]byte, error) { return val, nil })
	st := c.Stats()
	if st.Entries != 4 || st.Bytes != 400 || st.Evictions != 1 {
		t.Fatalf("post-eviction stats: %+v", st)
	}
	if _, ok := c.Get(keyN(1)); ok {
		t.Fatal("key 1 (coldest) should have been evicted")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if _, ok := c.Get(keyN(i)); !ok {
			t.Fatalf("key %d should survive", i)
		}
	}
}

// A value larger than one shard's budget is served but never stored:
// it would otherwise wipe the shard and immediately be evicted itself.
func TestCacheOversizeBypass(t *testing.T) {
	c := New(Config{MaxBytes: 100, Shards: 1})
	big := bytes.Repeat([]byte("b"), 200)
	key := KeyFor([]byte("big"), 0, "")
	out, hit := mustGet(t, c, key, func() ([]byte, error) { return big, nil })
	if hit || !bytes.Equal(out, big) {
		t.Fatal("oversize value must still be served")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize value must not be stored: %+v", st)
	}
}

func TestCacheComputeErrorNotCached(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 1})
	key := KeyFor([]byte("flaky"), 0, "")
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute(context.Background(), key, func() ([]byte, error) { return nil, boom }, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error result was cached: %+v", st)
	}
	out, hit := mustGet(t, c, key, func() ([]byte, error) { return []byte("ok"), nil })
	if hit || string(out) != "ok" {
		t.Fatalf("retry after error: hit=%v out=%q", hit, out)
	}
}

// The stampede battery: 64 goroutines all requesting the same key must
// collapse to exactly one compute via singleflight, and everyone gets
// the same bytes. ci.sh runs this under -race as the cache-stampede
// soak.
func TestCacheStampede(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 8})
	key := KeyFor([]byte("hot object"), 7, "wiki")
	var computes atomic.Int64
	want := []byte("the one true stream")
	const goroutines = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			out, _, err := c.GetOrCompute(context.Background(), key, func() ([]byte, error) {
				computes.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the stampede window
				return want, nil
			}, nil)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out, want) {
				errs <- fmt.Errorf("got %q", out)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("stampede ran %d computes, want exactly 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Coalesced+st.Hits != goroutines-1 {
		t.Fatalf("coalesced(%d)+hits(%d) != %d", st.Coalesced, st.Hits, goroutines-1)
	}
}

// A waiter whose context expires leaves the flight; the compute
// finishes and is cached for everyone else.
func TestCacheWaiterContextCancel(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 1})
	key := KeyFor([]byte("slow"), 0, "")
	release := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.GetOrCompute(context.Background(), key, func() ([]byte, error) { //nolint:errcheck
			close(started)
			<-release
			return []byte("late"), nil
		}, nil)
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, key, func() ([]byte, error) { return nil, errors.New("no") }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	<-done
	out, hit := mustGet(t, c, key, nil)
	if !hit || string(out) != "late" {
		t.Fatalf("post-cancel readback: hit=%v out=%q", hit, out)
	}
}

// Paranoid verify mode: a failing check drops the entry, counts a
// verify failure and recomputes; a passing check serves the hit.
func TestCacheVerifyMode(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 1, Verify: true})
	key := KeyFor([]byte("guarded"), 0, "")
	gen := 0
	compute := func() ([]byte, error) {
		gen++
		return []byte(fmt.Sprintf("gen-%d", gen)), nil
	}
	ok := func([]byte) error { return nil }
	bad := func([]byte) error { return errors.New("inflate mismatch") }

	c.GetOrCompute(context.Background(), key, compute, ok) //nolint:errcheck
	out, hit, err := c.GetOrCompute(context.Background(), key, compute, ok)
	if err != nil || !hit || string(out) != "gen-1" {
		t.Fatalf("verified hit: out=%q hit=%v err=%v", out, hit, err)
	}
	out, hit, err = c.GetOrCompute(context.Background(), key, compute, bad)
	if err != nil || hit || string(out) != "gen-2" {
		t.Fatalf("failed verify must recompute: out=%q hit=%v err=%v", out, hit, err)
	}
	if st := c.Stats(); st.VerifyFailures != 1 {
		t.Fatalf("verify failures = %d, want 1", st.VerifyFailures)
	}
	out, hit, err = c.GetOrCompute(context.Background(), key, compute, ok)
	if err != nil || !hit || string(out) != "gen-2" {
		t.Fatalf("recomputed entry should be stored: out=%q hit=%v err=%v", out, hit, err)
	}
}

// Mixed concurrent load across many keys under -race: hammers hit,
// miss, coalesce and eviction paths simultaneously and then checks the
// byte ledger against a full recount.
func TestCacheConcurrentSoak(t *testing.T) {
	c := New(Config{MaxBytes: 8 << 10, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := KeyFor([]byte{byte(i % 32)}, uint64(i%3), "")
				val := bytes.Repeat([]byte{byte(i)}, 64+(i%5)*100)
				out, _, err := c.GetOrCompute(context.Background(), k, func() ([]byte, error) { return val, nil }, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if len(out) == 0 {
					t.Error("empty result")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	var bytesHeld, entries int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			bytesHeld += int64(len(el.Value.(*entry).val))
			entries++
		}
		if sh.bytes > c.maxPerShard {
			t.Errorf("shard over budget: %d > %d", sh.bytes, c.maxPerShard)
		}
		sh.mu.Unlock()
	}
	if st.Bytes != bytesHeld || st.Entries != entries {
		t.Fatalf("ledger drift: stats=%+v recount bytes=%d entries=%d", st, bytesHeld, entries)
	}
}
