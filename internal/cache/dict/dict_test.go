package dict

import (
	"bytes"
	"errors"
	"testing"
)

func TestValidName(t *testing.T) {
	good := []string{"wiki", "can", "json", "a", "log-v2", "0x-12", "abcdefghijklmnopqrstuvwxyz-01234"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	bad := []string{"", "Wiki", "has space", "uber/long", "x.y", "ümlaut",
		"abcdefghijklmnopqrstuvwxyz-012345"} // 33 chars
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestRegistryAddResolve(t *testing.T) {
	r := NewRegistry()
	if err := r.Add("wiki", []byte("dictionary content")); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("wiki", []byte("again")); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := r.Add("BAD", []byte("x")); err == nil {
		t.Fatal("invalid name accepted")
	}
	if err := r.Add("empty", nil); err == nil {
		t.Fatal("empty dictionary accepted")
	}
	d, err := r.Resolve("wiki")
	if err != nil || string(d) != "dictionary content" {
		t.Fatalf("Resolve: %q, %v", d, err)
	}
	if _, err := r.Resolve("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown resolve err = %v, want ErrUnknown", err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Name != "wiki" || infos[0].Hits != 1 || infos[0].Bytes != len("dictionary content") {
		t.Fatalf("List: %+v", infos)
	}
	if infos[0].Adler == 0 {
		t.Fatal("Adler not computed")
	}
}

// Add must copy: mutating the caller's slice afterwards must not reach
// the registered bytes (streams across the fleet depend on them).
func TestRegistryCopies(t *testing.T) {
	r := NewRegistry()
	src := []byte("immutable")
	r.Add("d", src) //nolint:errcheck
	src[0] = 'X'
	d, _ := r.Peek("d")
	if string(d) != "immutable" {
		t.Fatalf("registry aliased caller bytes: %q", d)
	}
}

// Built-ins must be deterministic (fleet members must agree byte-wise)
// and pairwise distinct per class.
func TestBuiltinDeterministic(t *testing.T) {
	seen := map[string][]byte{}
	for _, class := range BuiltinClasses() {
		a, err := Builtin(class)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Builtin(class)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("class %q not deterministic", class)
		}
		if len(a) != builtinSize {
			t.Fatalf("class %q size %d, want %d", class, len(a), builtinSize)
		}
		for prev, pb := range seen {
			if bytes.Equal(a, pb) {
				t.Fatalf("classes %q and %q trained identical dictionaries", class, prev)
			}
		}
		seen[class] = a
	}
	if _, err := Builtin("nope"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestNewBuiltinRegistry(t *testing.T) {
	r, err := NewBuiltinRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(BuiltinClasses()) {
		t.Fatalf("Len = %d", r.Len())
	}
	sub, err := NewBuiltinRegistry("json")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 1 {
		t.Fatalf("subset Len = %d", sub.Len())
	}
	if _, err := NewBuiltinRegistry("bogus"); err == nil {
		t.Fatal("bogus class accepted")
	}
}

// The local adler32 must agree with the deflate layer's checksum — the
// DICTID in served streams is computed there.
func TestAdlerMatchesRFC(t *testing.T) {
	// Known vector: adler32("Wikipedia") = 0x11E60398.
	if got := adler32([]byte("Wikipedia")); got != 0x11E60398 {
		t.Fatalf("adler32 = %08x, want 11E60398", got)
	}
	if got := adler32(nil); got != 1 {
		t.Fatalf("adler32(nil) = %d, want 1", got)
	}
}
