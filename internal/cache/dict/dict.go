// Package dict is the preset-dictionary service behind per-request
// dictionary negotiation: a registry of named dictionaries the serving
// layer resolves by ID (HTTP X-Lzss-Dict header, framed-TCP dict flag
// field). A dictionary is trained per content class — the same key
// schemas, boilerplate and value vocabularies arrive over and over, so
// presetting them as LZSS history makes even a single short record
// compress well (the ratio win of shared context on repetitive
// payloads).
//
// Built-in classes are trained from internal/workload generators
// (wiki / CAN-log / JSON-ish), deterministically: the same class name
// always yields byte-identical dictionary content, so every node in a
// fleet resolves "wiki" to the same bytes and streams compressed on
// one node decode on any other.
package dict

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lzssfpga/internal/workload"
)

// MaxNameLen bounds a dictionary ID: the framed-TCP dict field carries
// the name length in one byte and the protocol caps it well below 255
// to keep the field from becoming a payload channel.
const MaxNameLen = 32

// ErrUnknown reports a negotiation naming a dictionary the registry
// does not hold. The serving layer maps it onto StatusUnknownDict /
// HTTP 400 — a deterministic client error, never a retryable one.
var ErrUnknown = fmt.Errorf("dict: unknown dictionary")

// Info describes one registered dictionary for the /dicts listing.
type Info struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
	// Adler is the dictionary's Adler-32 — the DICTID any stream
	// compressed against it carries (RFC 1950 §2.2), so clients can
	// match streams to dictionaries offline.
	Adler uint32 `json:"adler32"`
	// Hits counts requests that negotiated this dictionary since the
	// registry was built (per-dictionary counters live here, not in the
	// metric namespace).
	Hits int64 `json:"hits"`
}

// entry is one registered dictionary; hits is bumped lock-free on the
// serving path.
type entry struct {
	bytes []byte
	adler uint32
	hits  atomic.Int64
}

// Registry holds named dictionaries. Registration happens at startup;
// the serving path only reads, under an RLock.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// ValidName reports whether name is a legal dictionary ID: 1..32
// characters from [a-z0-9-]. The alphabet is deliberately tiny — the
// ID travels in an HTTP header and a wire field, and is echoed back.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > MaxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// Add registers data under name. The bytes are copied; duplicate names
// and invalid IDs are rejected.
func (r *Registry) Add(name string, data []byte) error {
	if !ValidName(name) {
		return fmt.Errorf("dict: invalid dictionary name %q (want 1..%d chars of [a-z0-9-])", name, MaxNameLen)
	}
	if len(data) == 0 {
		return fmt.Errorf("dict: dictionary %q is empty", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return fmt.Errorf("dict: dictionary %q already registered", name)
	}
	r.byName[name] = &entry{bytes: append([]byte(nil), data...), adler: adler32(data)}
	registered.Add(1)
	return nil
}

// Resolve is the negotiation lookup: it returns the dictionary bytes
// for name and records the request in both the aggregate dict_*
// counters and the per-dictionary hit count. An unknown name returns
// ErrUnknown (wrapped with the name). The returned slice is shared
// read-only.
func (r *Registry) Resolve(name string) ([]byte, error) {
	if k := dictObs.Load(); k != nil {
		k.requests.Inc()
	}
	r.mu.RLock()
	e, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		if k := dictObs.Load(); k != nil {
			k.unknown.Inc()
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	e.hits.Add(1)
	if k := dictObs.Load(); k != nil {
		k.hits.Inc()
	}
	return e.bytes, nil
}

// Peek returns the dictionary bytes for name without touching any
// counter (verification and test paths).
func (r *Registry) Peek(name string) ([]byte, bool) {
	r.mu.RLock()
	e, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.bytes, true
}

// List returns the registered dictionaries sorted by name, with live
// hit counts — the /dicts endpoint body.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.byName))
	for name, e := range r.byName {
		out = append(out, Info{Name: name, Bytes: len(e.bytes), Adler: e.adler, Hits: e.hits.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered dictionaries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// builtinSize is the trained size of a built-in class dictionary:
// 8 KiB fits entirely inside every serving window (the smallest is the
// paper's 4 KiB minus one — the compressor caps at Window-1) while
// carrying several thousand schema/boilerplate instances.
const builtinSize = 8 << 10

// builtinSeed pins the training corpora: built-ins must be
// byte-identical on every node and across releases, or fleet members
// would emit streams their peers reject by DICTID.
const builtinSeed = 424243

// Builtin trains and returns one built-in class dictionary: the
// trailing builtinSize bytes of a deterministic workload corpus of the
// class, so the dictionary looks like "what the stream recently
// carried" — exactly the history a continuing stream would have.
func Builtin(class string) ([]byte, error) {
	switch class {
	case "wiki", "can", "json":
	default:
		return nil, fmt.Errorf("dict: unknown builtin class %q (want wiki, can or json)", class)
	}
	gen, err := workload.ByName(class)
	if err != nil {
		return nil, err
	}
	corpus := gen(4*builtinSize, builtinSeed)
	return corpus[len(corpus)-builtinSize:], nil
}

// BuiltinClasses lists the trainable class names.
func BuiltinClasses() []string { return []string{"can", "json", "wiki"} }

// NewBuiltinRegistry builds a registry holding the named built-in
// classes ("wiki,can,json" subsets; an empty slice means all).
func NewBuiltinRegistry(classes ...string) (*Registry, error) {
	if len(classes) == 0 {
		classes = BuiltinClasses()
	}
	r := NewRegistry()
	for _, c := range classes {
		d, err := Builtin(c)
		if err != nil {
			return nil, err
		}
		if err := r.Add(c, d); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// adler32 is RFC 1950's checksum (duplicated from internal/deflate to
// keep the dependency arrow pointing serving→dict, not dict→deflate).
func adler32(data []byte) uint32 {
	const mod = 65521
	a, b := uint32(1), uint32(0)
	for i := 0; i < len(data); {
		n := len(data) - i
		if n > 5552 { // max bytes before a/b can overflow uint32
			n = 5552
		}
		for _, c := range data[i : i+n] {
			a += uint32(c)
			b += a
		}
		a %= mod
		b %= mod
		i += n
	}
	return b<<16 | a
}
