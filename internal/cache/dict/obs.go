package dict

import (
	"sync/atomic"

	"lzssfpga/internal/obs"
)

// dictSink holds the registry handles of the dict_* family: aggregate
// negotiation counters (per-dictionary hit counts are in the /dicts
// listing instead — the metric namespace stays fixed-cardinality).
type dictSink struct {
	requests *obs.Counter
	hits     *obs.Counter
	unknown  *obs.Counter
}

var dictObs atomic.Pointer[dictSink]

// registered counts dictionaries across every Registry in the process,
// feeding the dict_registered gauge at scrape time.
var registered atomic.Int64

// SetObservability wires the package's dict_* metrics into reg (nil
// disables).
func SetObservability(reg *obs.Registry) {
	if reg == nil {
		dictObs.Store(nil)
		return
	}
	k := &dictSink{
		requests: reg.Counter(obs.DictRequests),
		hits:     reg.Counter(obs.DictHits),
		unknown:  reg.Counter(obs.DictUnknown),
	}
	regG := reg.Gauge(obs.DictRegistered)
	reg.OnScrape("dict_registered", func() {
		regG.Set(float64(registered.Load()))
	})
	dictObs.Store(k)
}
