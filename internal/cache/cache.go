// Package cache implements the engine-level content-addressed result
// cache of ROADMAP item 2: a million users fetching the same hot object
// should cost one compression. Results are keyed by (payload sha256,
// engine-parameter fingerprint, dictionary ID), held in a sharded LRU
// bounded by a byte budget (values held, not entry count), and deduped
// in flight — N concurrent identical requests run one compression and
// share the cached bytes (singleflight).
//
// Correctness is by construction: a cached value is the exact byte
// stream a previous request returned, addressed by the full key, so a
// hit can never serve a stream the same request would not have
// produced. A paranoid verify mode additionally re-validates the
// cached stream on every hit (the caller supplies the check, typically
// a re-inflate against the request payload it holds); a failed check
// drops the entry, counts a verify failure, and recomputes.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// Key addresses one cached compression result. Sum is the sha256 of
// the uncompressed request payload; Params fingerprints every
// compression-relevant engine setting (two servers with different
// levels never share entries); Dict is the negotiated preset
// dictionary ID ("" when none). The struct is comparable and is used
// directly as a map key.
type Key struct {
	Sum    [32]byte
	Params uint64
	Dict   string
}

// KeyFor builds the cache key for one request payload.
func KeyFor(payload []byte, params uint64, dict string) Key {
	return Key{Sum: sha256.Sum256(payload), Params: params, Dict: dict}
}

// Config sizes a Cache. The zero value selects 64 MiB across 16
// shards with paranoid verify off.
type Config struct {
	// MaxBytes is the cache-wide budget for held values (0 selects
	// 64 MiB). Entries are evicted least-recently-used per shard when
	// the budget is exceeded; a single value larger than one shard's
	// slice of the budget is served but never stored.
	MaxBytes int64
	// Shards is the lock-striping width (0 selects 16).
	Shards int
	// Verify enables paranoid mode: every hit re-runs the caller's
	// verify function before the cached bytes are served.
	Verify bool
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	return c
}

// Stats is a point-in-time snapshot of a Cache's counters.
type Stats struct {
	Hits           int64 // requests served from a stored entry
	Misses         int64 // requests that ran the compute function
	Coalesced      int64 // requests that shared an in-flight compute
	Evictions      int64 // entries dropped by the byte budget
	VerifyFailures int64 // paranoid-mode hits whose check failed
	Bytes          int64 // value bytes currently held
	Entries        int64 // entries currently held
}

// entry is one stored result on a shard's LRU list.
type entry struct {
	key Key
	val []byte
}

// flight is one in-progress compute that later arrivals for the same
// key attach to. val/err are written before done is closed and never
// after, so waiters read them without a lock.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// shard is one lock stripe: its own LRU list, entry index, byte
// ledger, and in-flight compute map.
type shard struct {
	mu      sync.Mutex
	lru     list.List // front = most recent; values are *entry
	index   map[Key]*list.Element
	bytes   int64
	flights map[Key]*flight
}

// Cache is the content-addressed result cache. Values returned from
// GetOrCompute are shared read-only slices — callers must not mutate
// them.
type Cache struct {
	cfg         Config
	shards      []*shard
	maxPerShard int64

	hits           atomic.Int64
	misses         atomic.Int64
	coalesced      atomic.Int64
	evictions      atomic.Int64
	verifyFailures atomic.Int64
	bytes          atomic.Int64
	entries        atomic.Int64
}

// New builds a Cache from cfg (zero value usable).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	c.maxPerShard = cfg.MaxBytes / int64(cfg.Shards)
	if c.maxPerShard < 1 {
		c.maxPerShard = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{index: make(map[Key]*list.Element), flights: make(map[Key]*flight)}
	}
	return c
}

func (c *Cache) shardOf(k Key) *shard {
	h := uint64(k.Sum[0]) | uint64(k.Sum[1])<<8 | uint64(k.Sum[2])<<16 | uint64(k.Sum[3])<<24 |
		uint64(k.Sum[4])<<32 | uint64(k.Sum[5])<<40 | uint64(k.Sum[6])<<48 | uint64(k.Sum[7])<<56
	h ^= k.Params * 0x9e3779b97f4a7c15
	for i := 0; i < len(k.Dict); i++ {
		h = h*131 + uint64(k.Dict[i])
	}
	return c.shards[h%uint64(len(c.shards))]
}

// GetOrCompute returns the cached result for key, computing it at most
// once across all concurrent callers. compute runs outside the shard
// lock; its result is stored on success (compute errors are returned
// but never cached, so the next request retries). verify is consulted
// only on a hit and only when the cache was built with Verify: a
// non-nil error drops the entry, counts a verify failure, and falls
// through to a fresh compute. The returned slice is shared and
// read-only. The bool reports whether the bytes came from the cache
// (stored entry or a coalesced in-flight compute) rather than this
// caller's own compute run.
//
// A caller whose ctx expires while waiting on another caller's compute
// returns ctx.Err(); the compute itself continues and its result is
// cached for everyone else.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, compute func() ([]byte, error), verify func([]byte) error) ([]byte, bool, error) {
	sh := c.shardOf(key)
	for {
		sh.mu.Lock()
		if el, ok := sh.index[key]; ok {
			e := el.Value.(*entry)
			if c.cfg.Verify && verify != nil {
				// Verify outside the lock: re-inflating a large stream
				// under the shard mutex would serialize the stripe.
				val := e.val
				sh.mu.Unlock()
				if err := verify(val); err == nil {
					c.hits.Add(1)
					if k := cacheObs.Load(); k != nil {
						k.hits.Inc()
					}
					// Bump recency best-effort; the entry may already be
					// gone, which is fine.
					sh.mu.Lock()
					if el, ok := sh.index[key]; ok {
						sh.lru.MoveToFront(el)
					}
					sh.mu.Unlock()
					return val, true, nil
				}
				c.verifyFailures.Add(1)
				if k := cacheObs.Load(); k != nil {
					k.verifyFailures.Inc()
				}
				sh.mu.Lock()
				if el, ok := sh.index[key]; ok {
					sh.removeLocked(c, el)
				}
				sh.mu.Unlock()
				continue // recompute (or attach to a flight) from the top
			}
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			if k := cacheObs.Load(); k != nil {
				k.hits.Inc()
			}
			return e.val, true, nil
		}
		if f, ok := sh.flights[key]; ok {
			sh.mu.Unlock()
			c.coalesced.Add(1)
			if k := cacheObs.Load(); k != nil {
				k.coalesced.Inc()
			}
			select {
			case <-f.done:
				return f.val, true, f.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		sh.flights[key] = f
		sh.mu.Unlock()

		c.misses.Add(1)
		if k := cacheObs.Load(); k != nil {
			k.misses.Inc()
		}
		val, err := compute()
		f.val, f.err = val, err

		sh.mu.Lock()
		delete(sh.flights, key)
		if err == nil {
			sh.insertLocked(c, key, val)
		}
		sh.mu.Unlock()
		close(f.done)
		return val, false, err
	}
}

// Get returns the stored value for key without computing on miss.
func (c *Cache) Get(key Key) ([]byte, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.index[key]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// insertLocked stores val under key and evicts from the cold end until
// the shard is back under budget. Values too large for the shard's
// whole budget are not stored (they would evict everything and then be
// evicted themselves on the next insert).
func (sh *shard) insertLocked(c *Cache, key Key, val []byte) {
	if int64(len(val)) > c.maxPerShard {
		return
	}
	if el, ok := sh.index[key]; ok {
		// A verify-failure recompute (or a lost race) can re-insert an
		// existing key: replace the stored bytes.
		sh.removeLocked(c, el)
	}
	e := &entry{key: key, val: val}
	sh.index[key] = sh.lru.PushFront(e)
	sh.bytes += int64(len(val))
	c.bytes.Add(int64(len(val)))
	c.entries.Add(1)
	liveBytes.Add(int64(len(val)))
	liveEntries.Add(1)
	for sh.bytes > c.maxPerShard {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		sh.removeLocked(c, back)
		c.evictions.Add(1)
		if k := cacheObs.Load(); k != nil {
			k.evictions.Inc()
		}
	}
}

func (sh *shard) removeLocked(c *Cache, el *list.Element) {
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.index, e.key)
	sh.bytes -= int64(len(e.val))
	c.bytes.Add(-int64(len(e.val)))
	c.entries.Add(-1)
	liveBytes.Add(-int64(len(e.val)))
	liveEntries.Add(-1)
}

// Stats snapshots the cache's counters and occupancy.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Coalesced:      c.coalesced.Load(),
		Evictions:      c.evictions.Load(),
		VerifyFailures: c.verifyFailures.Load(),
		Bytes:          c.bytes.Load(),
		Entries:        c.entries.Load(),
	}
}
