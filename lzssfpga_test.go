package lzssfpga

import (
	"bytes"
	"compress/zlib"
	"io"
	"testing"

	"lzssfpga/internal/workload"
)

func TestPublicCompressDecompress(t *testing.T) {
	data := workload.Wiki(200_000, 1)
	z, err := Compress(data, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(data) {
		t.Fatalf("no compression: %d -> %d", len(data), len(z))
	}
	out, err := Decompress(z)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestPublicStreamIsZlibCompatible(t *testing.T) {
	data := workload.CAN(100_000, 2)
	z, err := Compress(data, LevelParams(LevelMax, 32768, 15))
	if err != nil {
		t.Fatal(err)
	}
	zr, err := zlib.NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("stdlib zlib cannot decode the public API output: %v", err)
	}
}

func TestPublicSimulateHardware(t *testing.T) {
	data := workload.Wiki(300_000, 3)
	res, err := SimulateHardware(data, DefaultHWConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CyclesPerByte() < 1 || res.Stats.CyclesPerByte() > 4 {
		t.Fatalf("cycles/byte %.2f implausible", res.Stats.CyclesPerByte())
	}
	out, err := Decompress(res.Zlib)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("hardware stream round trip failed: %v", err)
	}
	// Hardware and software paths emit the same stream.
	sw, err := Compress(data, DefaultHWConfig().Match)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sw, res.Zlib) {
		t.Fatal("software and hardware zlib streams differ")
	}
}

func TestPublicCompressCommands(t *testing.T) {
	cmds, err := CompressCommands([]byte("snowy snow"), HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 7 {
		t.Fatalf("paper example: want 7 commands, got %d", len(cmds))
	}
}

func TestPublicEstimateResources(t *testing.T) {
	est, err := EstimateResources(DefaultHWConfig())
	if err != nil {
		t.Fatal(err)
	}
	if est.LUTs() <= 0 || est.Blocks36 <= 0 {
		t.Fatalf("empty estimate: %+v", est)
	}
}

func TestPublicRejectsBadParams(t *testing.T) {
	if _, err := Compress([]byte("x"), Params{Window: 7}); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := SimulateHardware([]byte("x"), HWConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage zlib accepted")
	}
}

func TestPublicStreamingAPI(t *testing.T) {
	data := workload.Wiki(300_000, 17)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i += 10000 {
		end := i + 10000
		if end > len(data) {
			end = len(data)
		}
		if _, err := w.Write(data[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("streaming round trip failed")
	}
}

func TestPublicCompressBest(t *testing.T) {
	data := workload.Wiki(200_000, 18)
	fixed, err := Compress(data, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	best, err := CompressBest(data, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(best) > len(fixed) {
		t.Fatalf("best (%d) worse than fixed (%d)", len(best), len(fixed))
	}
	out, err := Decompress(best)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("best round trip failed: %v", err)
	}
}

func TestPublicDictAPI(t *testing.T) {
	dict := bytes.Repeat([]byte("record type=telemetry source=bus0 "), 8)
	data := []byte("record type=telemetry source=bus0 value=17.5")
	z, err := CompressDict(data, dict, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecompressDict(z, dict)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("dict round trip failed: %v", err)
	}
	plain, err := Compress(data, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(plain) {
		t.Fatalf("dictionary did not shrink output: %d vs %d", len(z), len(plain))
	}
}

func TestPublicGzipAPI(t *testing.T) {
	data := workload.Wiki(100_000, 90)
	z, err := GzipCompress(data, HWSpeedParams(), "snapshot.txt")
	if err != nil {
		t.Fatal(err)
	}
	out, name, err := GzipDecompress(z)
	if err != nil || !bytes.Equal(out, data) || name != "snapshot.txt" {
		t.Fatalf("gzip round trip failed: %v (name %q)", err, name)
	}
}

func TestPublicCompressSplit(t *testing.T) {
	data := workload.Mixed(500_000, 95)
	single, err := CompressBest(data, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	split, err := CompressSplit(data, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(split) >= len(single) {
		t.Fatalf("split %d not better than single-block %d on mixed data", len(split), len(single))
	}
	out, err := Decompress(split)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("split round trip failed: %v", err)
	}
}

func TestPublicStreamFlush(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, HWSpeedParams())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("live telemetry line that must reach storage now")
	w.Write(msg)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(r, got); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("flushed data not readable: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
