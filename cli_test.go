package lzssfpga

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lzssfpga/internal/workload"
)

// CLI end-to-end tests: build each command once, then exercise the
// workflows a user runs.

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

func cliBin(t *testing.T, name string) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "lzssfpga-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"lzsszip", "lzestim", "lzssbench", "lzlog"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return filepath.Join(cliDir, name)
}

func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(cliBin(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIZipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "input.bin")
	data := workload.Wiki(150_000, 200)
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "lzsszip", "-c", "-best", src)
	if !strings.Contains(out, "ratio") {
		t.Fatalf("compress output: %s", out)
	}
	out = runCLI(t, "lzsszip", "-t", src+".zz")
	if !strings.Contains(out, "OK") {
		t.Fatalf("test output: %s", out)
	}
	restored := filepath.Join(dir, "restored.bin")
	runCLI(t, "lzsszip", "-d", "-o", restored, src+".zz")
	got, err := os.ReadFile(restored)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restored file differs: %v", err)
	}
}

func TestCLIZipGzipMode(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "trace.bin")
	data := workload.CAN(80_000, 201)
	os.WriteFile(src, data, 0o644)
	runCLI(t, "lzsszip", "-c", "-gz", src)
	out := runCLI(t, "lzsszip", "-t", src+".gz")
	if !strings.Contains(out, "OK") {
		t.Fatalf("gzip test: %s", out)
	}
	restored := filepath.Join(dir, "restored")
	runCLI(t, "lzsszip", "-d", "-o", restored, src+".gz")
	got, _ := os.ReadFile(restored)
	if !bytes.Equal(got, data) {
		t.Fatal("gzip round trip differs")
	}
}

func TestCLIEstim(t *testing.T) {
	out := runCLI(t, "lzestim", "-mb", "1", "-corpus", "x2e")
	for _, want := range []string{"throughput:", "block RAM plan:", "fits XC5VFX70T"} {
		if !strings.Contains(out, want) {
			t.Fatalf("lzestim missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "lzestim", "-mb", "1", "-sweep", "hash", "-values", "9,12,15")
	if strings.Count(out, "\n") < 4 {
		t.Fatalf("sweep output too short:\n%s", out)
	}
}

func TestCLIBench(t *testing.T) {
	out := runCLI(t, "lzssbench", "-exp", "fig5", "-mb", "1")
	if !strings.Contains(out, "Finding match") || !strings.Contains(out, "paper reference") {
		t.Fatalf("lzssbench fig5:\n%s", out)
	}
}

func TestCLILogWorkflow(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.lzlog")
	out := runCLI(t, "lzlog", "record", "-out", trace, "-mb", "1")
	if !strings.Contains(out, "recorded") {
		t.Fatalf("record: %s", out)
	}
	out = runCLI(t, "lzlog", "dump", "-in", trace, "-max", "2")
	if !strings.Contains(out, "records total") {
		t.Fatalf("dump: %s", out)
	}
	runCLI(t, "lzlog", "index", "-in", trace)
	out = runCLI(t, "lzlog", "range", "-in", trace+".lzsx", "-off", "1000", "-len", "32")
	if !strings.Contains(out, "inflated") {
		t.Fatalf("range: %s", out)
	}
}
