package lzssfpga

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lzssfpga/internal/workload"
)

// CLI end-to-end tests: build each command once, then exercise the
// workflows a user runs.

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

func cliBin(t *testing.T, name string) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "lzssfpga-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"lzsszip", "lzestim", "lzssbench", "lzlog", "lzssmon", "lzssd"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return filepath.Join(cliDir, name)
}

func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(cliBin(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIZipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "input.bin")
	data := workload.Wiki(150_000, 200)
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "lzsszip", "-c", "-best", src)
	if !strings.Contains(out, "ratio") {
		t.Fatalf("compress output: %s", out)
	}
	out = runCLI(t, "lzsszip", "-t", src+".zz")
	if !strings.Contains(out, "OK") {
		t.Fatalf("test output: %s", out)
	}
	restored := filepath.Join(dir, "restored.bin")
	runCLI(t, "lzsszip", "-d", "-o", restored, src+".zz")
	got, err := os.ReadFile(restored)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restored file differs: %v", err)
	}
}

func TestCLIZipGzipMode(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "trace.bin")
	data := workload.CAN(80_000, 201)
	os.WriteFile(src, data, 0o644)
	runCLI(t, "lzsszip", "-c", "-gz", src)
	out := runCLI(t, "lzsszip", "-t", src+".gz")
	if !strings.Contains(out, "OK") {
		t.Fatalf("gzip test: %s", out)
	}
	restored := filepath.Join(dir, "restored")
	runCLI(t, "lzsszip", "-d", "-o", restored, src+".gz")
	got, _ := os.ReadFile(restored)
	if !bytes.Equal(got, data) {
		t.Fatal("gzip round trip differs")
	}
}

func TestCLIEstim(t *testing.T) {
	out := runCLI(t, "lzestim", "-mb", "1", "-corpus", "x2e")
	for _, want := range []string{"throughput:", "block RAM plan:", "fits XC5VFX70T"} {
		if !strings.Contains(out, want) {
			t.Fatalf("lzestim missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "lzestim", "-mb", "1", "-sweep", "hash", "-values", "9,12,15")
	if strings.Count(out, "\n") < 4 {
		t.Fatalf("sweep output too short:\n%s", out)
	}
}

func TestCLIBench(t *testing.T) {
	out := runCLI(t, "lzssbench", "-exp", "fig5", "-mb", "1")
	if !strings.Contains(out, "Finding match") || !strings.Contains(out, "paper reference") {
		t.Fatalf("lzssbench fig5:\n%s", out)
	}
}

func TestCLILogWorkflow(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.lzlog")
	out := runCLI(t, "lzlog", "record", "-out", trace, "-mb", "1")
	if !strings.Contains(out, "recorded") {
		t.Fatalf("record: %s", out)
	}
	out = runCLI(t, "lzlog", "dump", "-in", trace, "-max", "2")
	if !strings.Contains(out, "records total") {
		t.Fatalf("dump: %s", out)
	}
	runCLI(t, "lzlog", "index", "-in", trace)
	out = runCLI(t, "lzlog", "range", "-in", trace+".lzsx", "-off", "1000", "-len", "32")
	if !strings.Contains(out, "inflated") {
		t.Fatalf("range: %s", out)
	}
}

// TestCLIExitCodes is the error-path audit: every way a tool can fail
// must print a diagnostic to stderr and exit non-zero, so shell
// pipelines and CI scripts can trust the exit status.
func TestCLIExitCodes(t *testing.T) {
	dir := t.TempDir()
	real := filepath.Join(dir, "input.bin")
	if err := os.WriteFile(real, workload.Wiki(20_000, 7), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "corrupt.zz")
	if err := os.WriteFile(corrupt, []byte{0x78, 0x9C, 0xFF, 0x00, 0x01, 0x02}, 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "no-such-file.bin")

	cases := []struct {
		name    string
		tool    string
		args    []string
		wantErr string // must appear on stderr
	}{
		{"zip-no-mode", "lzsszip", []string{real}, "usage: lzsszip"},
		{"zip-missing-input", "lzsszip", []string{"-c", missing}, "no such file"},
		{"zip-pdict-without-p", "lzsszip", []string{"-c", "-pdict", real}, "-pdict requires -p"},
		{"zip-bad-level", "lzsszip", []string{"-c", "-level", "bogus", real}, `unknown level "bogus"`},
		{"zip-corrupt-test", "lzsszip", []string{"-t", corrupt}, "CORRUPT"},
		{"zip-trace-without-p", "lzsszip", []string{"-c", "-trace", filepath.Join(dir, "t.json"), real}, "-trace"},
		{"zip-memprofile-unwritable", "lzsszip",
			[]string{"-c", "-memprofile", filepath.Join(dir, "no-such-dir", "m.pprof"), real}, "memprofile"},
		{"zip-bad-metrics-addr", "lzsszip", []string{"-c", "-metrics", "256.256.256.256:0", real}, "metrics"},
		{"bench-bad-exp", "lzssbench", []string{"-exp", "bogus", "-mb", "1"}, `unknown experiment "bogus"`},
		{"bench-compare-without-json", "lzssbench", []string{"-compare", "old.json"}, "-compare requires -json"},
		{"estim-bad-corpus", "lzestim", []string{"-corpus", "bogus", "-mb", "1"}, `unknown corpus "bogus"`},
		{"estim-bad-sweep", "lzestim", []string{"-sweep", "bogus", "-values", "1,2", "-mb", "1"},
			`unknown sweep parameter "bogus"`},
		{"estim-missing-file", "lzestim", []string{"-file", missing}, "no such file"},
		{"log-no-subcommand", "lzlog", nil, "usage: lzlog"},
		{"log-bad-subcommand", "lzlog", []string{"bogus"}, `unknown subcommand "bogus"`},
		{"log-index-no-in", "lzlog", []string{"index"}, "-in required"},
		{"log-range-no-in", "lzlog", []string{"range"}, "-in required"},
		{"mon-no-addr", "lzssmon", nil, "usage: lzssmon"},
		{"mon-unreachable", "lzssmon", []string{"-addr", "127.0.0.1:1", "-timeout", "500ms"}, "lzssmon:"},
		{"mon-bad-format", "lzssmon", []string{"-addr", "127.0.0.1:1", "-format", "bogus"}, `unknown format "bogus"`},
		// -grep composes with -format json since PR 7 (it filters the
		// /debug/vars keys); only -watch still requires the prom format.
		{"mon-watch-json", "lzssmon", []string{"-addr", "127.0.0.1:1", "-format", "json", "-watch", "1s"},
			"cannot be combined with -format json"},
		{"lzssd-bad-level", "lzssd", []string{"-level", "bogus"}, `unknown level "bogus"`},
		{"lzssd-nothing-to-serve", "lzssd", []string{"-http", "", "-tcp", ""}, "nothing to serve"},
		{"lzssd-bad-faults", "lzssd", []string{"-faults", "bogus"}, "faultinject"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(cliBin(t, tc.tool), tc.args...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			err := cmd.Run()
			if err == nil {
				t.Fatalf("%s %v: exited 0, want failure\nstdout: %s", tc.tool, tc.args, stdout.String())
			}
			if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("%s %v: did not run: %v", tc.tool, tc.args, err)
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("%s %v: stderr missing %q\nstderr: %s", tc.tool, tc.args, tc.wantErr, stderr.String())
			}
		})
	}
}

// TestCLIMetricsScrape runs lzsszip with a live metrics endpoint and
// scrapes it with lzssmon in both formats while the process is held
// open — the full "start a run, point a scraper at it" workflow.
func TestCLIMetricsScrape(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "input.bin")
	if err := os.WriteFile(src, workload.Wiki(400_000, 42), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(cliBin(t, "lzsszip"),
		"-c", "-p", "2", "-metrics", "127.0.0.1:0", "-metricshold", "30s", src)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	// First stderr line announces the bound address.
	line, err := bufio.NewReader(stderr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading metrics announcement: %v", err)
	}
	line = strings.TrimSpace(line)
	i := strings.Index(line, "http://")
	j := strings.LastIndex(line, "/metrics")
	if i < 0 || j < i {
		t.Fatalf("unexpected announcement: %q", line)
	}
	addr := line[i+len("http://") : j]

	deadline := time.Now().Add(10 * time.Second)
	var prom string
	for {
		// deflate_parallel_runs_total increments when the run completes,
		// so once it shows up every per-segment counter has flushed too.
		out, err := exec.Command(cliBin(t, "lzssmon"), "-addr", addr).Output()
		if err == nil && strings.Contains(string(out), "deflate_parallel_runs_total 1") {
			prom = string(out)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrape never saw lzss metrics: %v\n%s", err, out)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE lzss_input_bytes_total counter",
		"deflate_segments_total",
		`lzss_match_len_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus scrape missing %q:\n%s", want, prom)
		}
	}
	jsonOut, err := exec.Command(cliBin(t, "lzssmon"), "-addr", addr, "-format", "json").Output()
	if err != nil {
		t.Fatalf("json scrape: %v", err)
	}
	var vars map[string]any
	if err := json.Unmarshal(jsonOut, &vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, jsonOut)
	}
	if v, ok := vars["deflate_parallel_runs_total"].(float64); !ok || v < 1 {
		t.Fatalf("expvar deflate_parallel_runs_total = %v, want >= 1", vars["deflate_parallel_runs_total"])
	}
}

// TestCLITraceFile checks that a parallel compression run writes a
// Chrome trace with all four pipeline stages.
func TestCLITraceFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "input.bin")
	if err := os.WriteFile(src, workload.Wiki(400_000, 43), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "pipeline.json")
	runCLI(t, "lzsszip", "-c", "-p", "2", "-trace", trace, src)
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	stages := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q: phase %q, want complete event X", e.Name, e.Ph)
		}
		stages[e.Name]++
	}
	for _, want := range []string{"split", "match", "encode", "assemble"} {
		if stages[want] == 0 {
			t.Fatalf("trace has no %q span (stages: %v)", want, stages)
		}
	}
}
