package lzssfpga

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lzssfpga/internal/workload"
)

// TestCLIZipFaults: -c -p N -faults compresses through the resilient
// pipeline under injected worker faults, self-checks, and the archive
// round-trips.
func TestCLIZipFaults(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "input.bin")
	data := workload.Wiki(400_000, 42)
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "lzsszip", "-c", "-p", "2", "-faults", "panic=0.5,seed=3", "-timeout", "2m", src)
	if !strings.Contains(out, "resilience:") {
		t.Fatalf("no resilience report in output: %s", out)
	}
	restored := filepath.Join(dir, "restored.bin")
	runCLI(t, "lzsszip", "-d", "-o", restored, src+".zz")
	got, err := os.ReadFile(restored)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restored file differs after faulty compression: %v", err)
	}
}

// TestCLIZipFaultsRequiresParallel: the flags are rejected without -p.
func TestCLIZipFaultsRequiresParallel(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "input.bin")
	os.WriteFile(src, []byte("small"), 0o644) //nolint:errcheck
	cmd := exec.Command(cliBin(t, "lzsszip"), "-c", "-faults", "panic=1", src)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-faults without -p accepted: %s", out)
	}
}

// TestCLIBenchFaults: the lzssbench fault demo runs the full resilient
// testbench loop and reports recovery.
func TestCLIBenchFaults(t *testing.T) {
	out := runCLI(t, "lzssbench", "-mb", "1", "-faults", "drop=0.05,flip=0.05,mem=0.05,seed=9", "-timeout", "3m")
	if !strings.Contains(out, "byte-exact after recovery") {
		t.Fatalf("fault demo output: %s", out)
	}
	if !strings.Contains(out, "faults injected:") {
		t.Fatalf("no fault ledger in output: %s", out)
	}
}

// TestCLIMonRetries: lzssmon retries until the endpoint appears, writes
// the full body once, and exits non-zero only after the budget.
func TestCLIMonRetries(t *testing.T) {
	// Reserve an address, but start serving only after a delay.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrStr := ln.Addr().String()
	ln.Close()
	go func() {
		time.Sleep(400 * time.Millisecond)
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "# HELP fake_metric late endpoint")
			fmt.Fprintln(w, "fake_metric 1")
		})
		ln2, err := net.Listen("tcp", addrStr)
		if err != nil {
			return
		}
		//nolint:errcheck
		go http.Serve(ln2, mux)
	}()
	out := runCLI(t, "lzssmon", "-addr", addrStr, "-retries", "8")
	if !strings.Contains(out, "fake_metric 1") {
		t.Fatalf("snapshot after retries: %s", out)
	}

	// Exhausted budget: non-zero exit, no stdout output.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()
	cmd := exec.Command(cliBin(t, "lzssmon"), "-addr", deadAddr, "-retries", "1", "-timeout", "200ms")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err == nil {
		t.Fatal("unreachable endpoint exited zero")
	}
	if stdout.Len() != 0 {
		t.Fatalf("failed probe wrote to stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "attempts") {
		t.Fatalf("stderr does not mention the attempt budget: %q", stderr.String())
	}
}
