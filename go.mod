module lzssfpga

go 1.22
